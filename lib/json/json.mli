(** A minimal JSON value type with a compact printer and a strict
    parser — just enough for the serve wire protocol, with zero
    dependencies beyond the stdlib.

    The printer emits no newlines (control characters in strings are
    escaped), so one encoded value is always one line — the framing
    invariant of the newline-delimited protocol. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact (single-line) encoding. *)

val of_string : string -> t
(** Strict parse of exactly one value (trailing whitespace allowed).
    @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** [member k (Obj …)] is the value under key [k]; [None] when the key
    is absent or the value is not an object. *)

val to_int : t -> int option
val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option
