type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---- printing -------------------------------------------------------------- *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec encode b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      (* round-trippable, and never "nan"/"inf" (not JSON): degrade to null *)
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
      else Buffer.add_string b "null"
  | String s ->
      Buffer.add_char b '"';
      escape_into b s;
      Buffer.add_char b '"'
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          encode b v)
        l;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape_into b k;
          Buffer.add_string b "\":";
          encode b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  encode b v;
  Buffer.contents b

(* ---- parsing --------------------------------------------------------------- *)

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* Encode a Unicode code point as UTF-8 (for \uXXXX escapes). *)
let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected '%c' at offset %d, got '%c'" c !pos c'
    | None -> fail "expected '%c' at offset %d, got end of input" c !pos
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "invalid literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 32 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            if !pos + 1 >= n then fail "truncated escape";
            (match s.[!pos + 1] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                if !pos + 5 >= n then fail "truncated \\u escape";
                (match int_of_string_opt ("0x" ^ String.sub s (!pos + 2) 4) with
                | Some cp -> add_utf8 b cp
                | None -> fail "invalid \\u escape at offset %d" !pos)
            | c -> fail "invalid escape '\\%c'" c);
            pos := !pos + (if s.[!pos + 1] = 'u' then 6 else 2);
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "invalid number %S at offset %d" tok start)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}' at offset %d" !pos
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']' at offset %d" !pos
          in
          List (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input at offset %d" !pos;
  v

(* ---- accessors ------------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_int = function Int i -> Some i | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
