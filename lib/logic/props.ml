open Kpt_predicate
open Kpt_unity

let log_src = Logs.Src.create "kpt.props" ~doc:"UNITY property checking"

module Log = (val Logs.src_log log_src)

(* Fair leads-to observability: the gfp of [fair_avoid] proceeds in
   elimination sweeps over the candidate set; the sweep count and the
   survivors per sweep are what explain a slow liveness check. *)
let c_gfp_runs = Kpt_obs.counter "leadsto.gfp.runs"
let c_gfp_sweeps = Kpt_obs.counter "leadsto.gfp.sweeps"

type t =
  | Invariant of Bdd.t
  | Stable of Bdd.t
  | Unless of Bdd.t * Bdd.t
  | Ensures of Bdd.t * Bdd.t
  | Leadsto of Bdd.t * Bdd.t

let unless prog p q =
  let space = Program.space prog in
  let m = Space.manager space in
  let si = Program.si prog in
  let lhs = Bdd.conj m [ si; p; Bdd.not_ m q ] in
  List.for_all
    (fun s -> Pred.holds_implies space lhs (Stmt.wp space s (Bdd.or_ m p q)))
    (Program.statements prog)

let ensures prog p q =
  let space = Program.space prog in
  let m = Space.manager space in
  let si = Program.si prog in
  let lhs = Bdd.conj m [ si; p; Bdd.not_ m q ] in
  unless prog p q
  && List.exists
       (fun s -> Pred.holds_implies space lhs (Stmt.wp space s q))
       (Program.statements prog)

let stable prog p =
  let m = Space.manager (Program.space prog) in
  unless prog p (Bdd.fls m)

let invariant = Program.invariant

(* --- fair leads-to ------------------------------------------------------ *)

(* Integer code of a state for hashing. *)
let coder space =
  let vars = Array.of_list (Space.vars space) in
  fun st ->
    let code = ref 0 in
    Array.iteri (fun k v -> code := (!code * Space.card v) + st.(k)) vars;
    !code

let fair_avoid prog q =
  let space = Program.space prog in
  let m = Space.manager space in
  let stmts = Array.of_list (Program.statements prog) in
  let n = Array.length stmts in
  let full_mask = (1 lsl n) - 1 in
  let code_of = coder space in
  (* Candidate states: reachable and avoiding q. *)
  let b0 = Bdd.and_ m (Program.si prog) (Bdd.not_ m q) in
  let states = Array.of_list (Space.states_of space b0) in
  let index = Hashtbl.create (Array.length states * 2) in
  Array.iteri (fun k st -> Hashtbl.add index (code_of st) k) states;
  let nstates = Array.length states in
  (* successor table: succ.(u).(t) = index of exec t from u, or -1 if the
     successor leaves the candidate set *)
  let succ = Array.make_matrix nstates n (-1) in
  Array.iteri
    (fun u st ->
      for t = 0 to n - 1 do
        let st' = Stmt.exec space stmts.(t) st in
        match Hashtbl.find_opt index (code_of st') with
        | Some v -> succ.(u).(t) <- v
        | None -> ()
      done)
    states;
  let alive = Array.make nstates true in
  (* Visited sets for the inner BFS, allocated once and reused across every
     [survives] call: a generation-stamped int array when the
     state × mask key space is small, a (reset) hash table otherwise. *)
  let nkeys = nstates * (full_mask + 1) in
  let use_stamps = nstates > 0 && nkeys / nstates = full_mask + 1 && nkeys <= 1 lsl 22 in
  let stamps = if use_stamps then Array.make (max nkeys 1) 0 else [||] in
  let generation = ref 0 in
  let seen_tbl = Hashtbl.create 256 in
  let queue = Queue.create () in
  (* Round check: from u, can we apply every statement at least once while
     staying among alive states?  BFS over (state, remaining-mask). *)
  let survives u =
    Engine.checkpoint ();
    incr generation;
    if not use_stamps then Hashtbl.reset seen_tbl;
    Queue.clear queue;
    let push v mask =
      let key = (v * (full_mask + 1)) + mask in
      let visited =
        if use_stamps then
          stamps.(key) = !generation || (stamps.(key) <- !generation; false)
        else Hashtbl.mem seen_tbl key || (Hashtbl.add seen_tbl key (); false)
      in
      if not visited then Queue.add (v, mask) queue
    in
    push u full_mask;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let v, mask = Queue.pop queue in
      if mask = 0 then found := true
      else
        for t = 0 to n - 1 do
          let v' = succ.(v).(t) in
          if v' >= 0 && alive.(v') then push v' (mask land lnot (1 lsl t))
        done
    done;
    !found
  in
  Log.debug (fun f ->
      f "fair_avoid: %d candidate states, %d statements" nstates n);
  Kpt_obs.incr c_gfp_runs;
  if Kpt_obs.enabled () then
    Kpt_obs.emit "leadsto.gfp" [ ("candidates", nstates); ("statements", n) ];
  let changed = ref true in
  let sweeps = ref 0 in
  while !changed do
    incr sweeps;
    Kpt_obs.incr c_gfp_sweeps;
    Engine.checkpoint ~fuel:1 ();
    changed := false;
    for u = 0 to nstates - 1 do
      if alive.(u) && not (survives u) then begin
        alive.(u) <- false;
        changed := true
      end
    done;
    if Kpt_obs.enabled () then
      Kpt_obs.emit "leadsto.gfp.sweep"
        [
          ("sweep", !sweeps);
          ("alive", Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 alive);
        ]
  done;
  Log.debug (fun f ->
      f "fair_avoid: gfp reached after %d sweep(s); %d state(s) can avoid"
        !sweeps
        (Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 alive));
  let acc = ref (Bdd.fls m) in
  Array.iteri
    (fun u st -> if alive.(u) then acc := Bdd.or_ m !acc (Space.pred_of_state space st))
    states;
  !acc

let leads_to prog p q =
  let space = Program.space prog in
  let m = Space.manager space in
  let danger = fair_avoid prog q in
  let start = Bdd.conj m [ Program.si prog; p; Bdd.not_ m q ] in
  (* A fair run from a reachable p-state misses q iff it can reach, inside
     ¬q, a state that fairly avoids q; because every state of the avoiding
     run itself avoids q, it suffices that the start can avoid q, i.e. is
     itself in the gfp. *)
  Bdd.is_false (Bdd.and_ m start danger)

let wlt prog q =
  let m = Space.manager (Program.space prog) in
  Bdd.or_ m q (Bdd.not_ m (fair_avoid prog q))

let holds prog = function
  | Invariant p -> invariant prog p
  | Stable p -> stable prog p
  | Unless (p, q) -> unless prog p q
  | Ensures (p, q) -> ensures prog p q
  | Leadsto (p, q) -> leads_to prog p q

let first_state_of space pred =
  match Space.states_of space pred with [] -> None | st :: _ -> Some st

let invariant_counterexample prog p =
  let space = Program.space prog in
  let m = Space.manager space in
  first_state_of space (Bdd.and_ m (Program.si prog) (Bdd.not_ m p))

let unless_counterexample prog p q =
  let space = Program.space prog in
  let m = Space.manager space in
  let si = Program.si prog in
  let bad = Bdd.conj m [ si; p; Bdd.not_ m q ] in
  let rec scan = function
    | [] -> None
    | s :: rest -> (
        let violating =
          Bdd.and_ m bad (Bdd.not_ m (Stmt.wp space s (Bdd.or_ m p q)))
        in
        match first_state_of space violating with
        | Some st -> Some (st, Stmt.name s, Stmt.exec space s st)
        | None -> scan rest)
  in
  scan (Program.statements prog)

let leads_to_counterexample prog p q =
  let space = Program.space prog in
  let m = Space.manager space in
  let danger = fair_avoid prog q in
  first_state_of space (Bdd.conj m [ Program.si prog; p; Bdd.not_ m q; danger ])

let pp space fmt prop =
  let pr = Space.pp_pred space in
  match prop with
  | Invariant p -> Format.fprintf fmt "invariant %a" pr p
  | Stable p -> Format.fprintf fmt "stable %a" pr p
  | Unless (p, q) -> Format.fprintf fmt "%a unless %a" pr p pr q
  | Ensures (p, q) -> Format.fprintf fmt "%a ensures %a" pr p pr q
  | Leadsto (p, q) -> Format.fprintf fmt "%a ↦ %a" pr p pr q
