(** String-returning command drivers — the single implementation behind
    both the [kpt] CLI and the [kpt serve] daemon.

    Each function here is one CLI command body (the batch form of
    [kpt check], [kpt lint], [kpt stats], [kpt solve-file], [kpt slice])
    refactored to {e return} its rendered output instead of printing it:
    the CLI prints the strings, the daemon ships them over the wire, and
    byte-identity between the two is structural rather than pinned by
    sampling.

    {b Per-request scoping.}  Every call runs under a fresh {!Engine.t}
    ({!Kpt_obs.Ctx.reset} on its zeroed context, belt and braces), arms
    its budget {e at call time} (so a [--timeout] deadline is relative
    to request start, never to daemon start or engine creation), applies
    the requested reorder policy as the process default for the duration
    (restored afterwards — pool-task engines follow the default), and
    merges the engine's metrics into the caller's context before
    returning.  Nothing armed, counted or hooked for one call is visible
    to the next — the warm-engine invariant the serve tests pin. *)

open Kpt_predicate

type options = {
  jobs : int option;  (** pool width for multi-file commands; [None] = auto *)
  json : bool;
  warn_error : bool;
  quiet : bool;
  slice : bool;  (** verdict-preserving cone-of-influence reduction *)
  semantic : bool;  (** [kpt lint --semantic] (KPT1xx tier) *)
  timings : bool;  (** [kpt stats --json --timings] *)
  trace : bool;  (** stream fixpoint events (to [err], or a custom sink) *)
  wrt : string list;  (** [kpt slice --wrt] properties, in option order *)
  limits : Budget.limits;
  reorder : Engine.reorder_mode;
}

val default_options : options
(** Everything off, no budget, [reorder = Reorder_off] (the in-process
    default; the CLI passes its own [--reorder] value, default [auto]). *)

type outcome = {
  code : int;  (** the CLI exit code: 0 ok, 1 findings, 2 usage, 3 budget *)
  out : string;  (** bytes the command would write to stdout *)
  err : string;  (** bytes the command would write to stderr *)
}

type sink = string -> (string * int) list -> unit
(** A {!Kpt_obs} event sink.  When given, it replaces the default
    [trace] rendering (events into [err]) — the daemon streams events
    over the socket this way. *)

val check : ?sink:sink -> options -> (string * string) list -> outcome
(** The batch form of [kpt check]: [(file, source)] pairs through
    {!Check.run_sources}.  (The built-in-protocol form stays in the
    CLI.) *)

val lint : ?sink:sink -> options -> (string * string) list -> outcome
(** [kpt lint] via {!Lint.run_sources}; [options.semantic] adds the
    KPT1xx tier, [options.limits] overrides its analysis budget. *)

val stats : ?sink:sink -> options -> (string * string) list -> outcome
(** [kpt stats]: one file keeps the historical single-file rendering;
    several files are profiled on the pool and rendered in input order
    (a JSON array under [options.json]). *)

val solve : ?sink:sink -> options -> (string * string) list -> outcome
(** [kpt solve-file] on the first source: pretty-print the (optionally
    sliced) KBP, enumerate the Ĝ fixpoints, then run the chaotic
    iteration — budget exhaustion degrades to code 3 with a partial
    result, exactly like the CLI. *)

val slice : ?sink:sink -> options -> (string * string) list -> outcome
(** [kpt slice] on the first source, with respect to [options.wrt]. *)
