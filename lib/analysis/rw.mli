(** Read/write-set analysis — the shared substrate of the lint passes and
    a reusable cone-of-influence computation.

    Two granularities mirror the two program representations:
    - {e surface}: sets of variable {e base names} over the [.unity] AST
      (an array access [a[e]] reads and writes the base [a]);
    - {e semantic}: {!Kpt_predicate.Space.var} sets over compiled
      {!Kpt_unity.Stmt.t} statements.

    Guard reads are split into the part {e outside} knowledge operators
    (which eq. 13 requires to be local to the acting process) and the
    part {e inside} each [K]/[E]/[C]/[D] (which may mention anything —
    that is the point of knowledge). *)

open Kpt_syntax
open Kpt_predicate
open Kpt_unity

module S : Set.S with type elt = string

(** A knowledge operator occurring in a guard. *)
type kop = {
  agents : string list;  (** [K[p]] has one agent; groups have several *)
  kspan : Loc.span;  (** position of the [K]/[E]/[C]/[D] letter *)
  kreads : S.t;  (** variables read inside the operator *)
  negated_reads : S.t;
      (** variables occurring under negative (or mixed) polarity {e inside}
          the operator body — knowledge of negated facts, the Figure 1-2
          trigger *)
  negative_position : bool;
      (** the operator itself sits under negative (or mixed) polarity
          within the guard *)
}

type stmt_rw = {
  writes : S.t;  (** assignment-target base names *)
  rhs_reads : S.t;  (** right-hand sides, including target indices *)
  guard_plain : S.t;  (** guard reads outside every knowledge operator *)
  kops : kop list;  (** knowledge operators of the guard, in source order *)
}

val reads : vars:S.t -> Ast.expr -> S.t
(** Variables of [vars] read by an expression (identifiers outside [vars]
    — enum literals, unknowns — are ignored). *)

val of_stmt : vars:S.t -> Ast.stmt -> stmt_rw

val all_reads : stmt_rw -> S.t
(** [rhs_reads ∪ guard_plain ∪ every operator's kreads]. *)

val cone : (S.t * S.t) list -> S.t -> S.t
(** [cone stmts targets]: least set [C ⊇ targets] such that whenever a
    statement's write set meets [C], its read set is included — the
    variables that can influence [targets] through any statement chain
    (cone of influence). *)

(** {1 Semantic granularity} *)

module V : Set.S with type elt = int
(** Sets of variables by {!Space.idx}. *)

val of_vars : Space.var list -> V.t

val stmt_writes : Stmt.t -> V.t

val stmt_reads : Space.t -> Stmt.t -> V.t
(** Guard and right-hand-side reads.  Pre-compiled guard predicates
    ({!Stmt.Gpred}) contribute their BDD support. *)

val program_cone : Program.t -> V.t -> V.t
(** Cone of influence over a compiled program's statements. *)

val kform_reads : Kpt_core.Kform.t -> V.t
(** Every variable a knowledge guard reads, operator bodies included. *)

val kstmt_writes : Kpt_core.Kbp.kstmt -> V.t
val kstmt_reads : Kpt_core.Kbp.kstmt -> V.t

val kbp_cone : Kpt_core.Kbp.t -> V.t -> V.t
(** Cone of influence over a knowledge-based protocol's statements, at
    the same write-meets-cone-pulls-in-reads closure as
    {!program_cone}. *)

val var_of_idx : Space.t -> int -> Space.var
(** Inverse of {!Space.idx} (by scan; spaces are small). *)

val vars_of_support : Space.t -> int list -> V.t
(** Map a BDD support (a set of bit indices) back to the program
    variables owning those bits. *)
