(** The differential / metamorphic harness behind [kpt difftest].

    Every way the toolchain can process a [.unity] source must agree:
    byte-for-byte across [Driver] paths that promise identical rendering
    ([-j1] vs [-jN], [--reorder off] vs [auto] in text mode, plus any
    caller-injected path such as the serve daemon), and
    verdict-for-verdict across transformations that may change bytes but
    never meaning (slicing, variable renaming, statement permutation).
    Disagreements are minimised by greedy statement removal and reported
    with enough structure for a replayable [KPT_GEN_SEED] case. *)

(** {1 Verdicts} *)

type verdict = {
  failed : bool;
  codes : string list;  (** sorted, deduplicated diagnostic codes *)
  klass : string;
      (** ["standard"] | ["kbp_converged"] | ["kbp_cycle"] |
          ["exhausted"] | ["error"] *)
  exit_code : int;  (** {!Check.run_sources} semantics: [0] | [1] | [3] *)
}

val envelope_limits : Kpt_predicate.Budget.limits
(** The generous wall-clock-free budget verdict comparisons run under —
    exhaustion under it is deterministic and machine-independent. *)

val verdict_of_report : Check.report -> verdict

val check_verdict :
  ?slice:bool -> limits:Kpt_predicate.Budget.limits -> file:string -> string -> verdict
(** One fresh-engine {!Check.reports} run, summarised. *)

val verdict_to_string : verdict -> string

(** {1 Paths} *)

type runner =
  limits:Kpt_predicate.Budget.limits -> file:string -> source:string -> Driver.outcome

type path = { path_name : string; run : runner }

val base_path : path
(** [check -j1 --reorder off] — the reference every byte pair compares
    against. *)

val builtin_paths : path list
(** [check -j3] and [check --reorder auto]. *)

val path_names : extra_paths:path list -> string list
(** Every check a {!run_spec} with these extras performs, for reports. *)

(** {1 Running} *)

type disagreement = {
  d_file : string;
  d_check : string;  (** e.g. ["path:check-j1-vs-check-j3"], ["metamorphic:rename"] *)
  d_detail : string;
  d_shrunk : string option;  (** minimised reproducer source *)
}

type spec_result = {
  r_file : string;
  r_verdict : verdict;  (** base-path verdict under the instance budget *)
  r_comparisons : int;
  r_disagreements : disagreement list;
}

val shrink : still_bad:(string -> bool) -> string -> string option
(** Greedy statement removal while [still_bad] holds on the unparsed
    candidate; [None] when the source does not parse. *)

val run_spec :
  ?extra_paths:path list ->
  ?expected:verdict ->
  ?seed:int64 ->
  limits:Kpt_predicate.Budget.limits ->
  file:string ->
  source:string ->
  unit ->
  spec_result
(** All comparisons for one spec: byte pairs (base vs built-in vs
    [extra_paths]) under [limits], the manifest-envelope differential
    (when [expected] is given), then slice / rename / permute verdict
    comparisons under {!envelope_limits}.  [seed] keys the permutation.
    Every disagreement is shrunk before being reported. *)

(** {1 Corpus aggregation} *)

type obs = {
  o_family : string;
  o_size : int;
  o_fault : string;
  o_budget : string;  (** ["none"] or ["fuel:N"] *)
  o_ns : int64;  (** wall time of the spec's comparisons *)
  o_result : spec_result;
}

val loglog_slope : (int * int64) list -> float option
(** Least-squares slope of [log ns] against [log size]; [None] below two
    distinct sizes. *)

val report_json : seed:string -> paths:string list -> obs list -> Json.t
(** The [CORPUS_RESULTS.json] document: corpus metadata, the
    comparison/pass-rate block, outcome and lint distributions,
    budget-exhaustion rates, per-family time-vs-size fits, and (unpinned)
    timings. *)
