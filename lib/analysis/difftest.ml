(* The differential / metamorphic harness behind [kpt difftest].

   One spec, many pipelines, one truth: every way the toolchain can
   process a [.unity] source must agree.  Two comparison semantics:

   - {e Bytes}: two [Driver] paths over the same source must produce
     identical [(out, err, code)] triples.  Valid wherever the rendered
     output is a function of the input alone — [-j1] vs [-jN] (the
     renderer is input-ordered), [--reorder off] vs [auto] in text mode
     (the text summary contains no node counts), and the serve / cache
     paths the CLI injects (the daemon is the same [Driver] behind a
     socket).

   - {e Verdict}: the structured verdict {failed; sorted codes; outcome
     class} must survive transformations that may legitimately change
     bytes — slicing (fewer variables, different counts, same verdict)
     and the metamorphic transforms (variable renaming, statement
     permutation).

   A disagreement is minimised by greedy statement removal
   ([Mutate.drop_stmt]) and reported with enough structure for the CLI
   to print a replayable [KPT_GEN_SEED] case. *)

open Kpt_syntax

(* ---- verdicts ---------------------------------------------------------------- *)

type verdict = {
  failed : bool;
  codes : string list;  (* sorted, deduplicated *)
  klass : string;  (* standard | kbp_converged | kbp_cycle | exhausted | error *)
  exit_code : int;  (* Check.run_sources semantics: 0 | 1 | 3 *)
}

(* the generous, wall-clock-free budget verdict-level comparisons run
   under (and [kpt gen] computes expected envelopes under): exhaustion
   under it is deterministic and machine-independent *)
let envelope_limits = Kpt_predicate.Budget.limits ~fuel:200_000 ~max_nodes:4_000_000 ()

let verdict_of_report (r : Check.report) =
  let codes = List.sort_uniq compare (List.map (fun d -> d.Diagnostic.code) r.diags) in
  let failed = Check.failed r in
  let klass =
    match r.stats with
    | Some s -> (
        match s.Stats.outcome with
        | Stats.Standard _ -> "standard"
        | Stats.Kbp_converged _ -> "kbp_converged"
        | Stats.Kbp_cycle _ -> "kbp_cycle")
    | None -> if List.mem "KPT041" codes then "exhausted" else "error"
  in
  let exit_code = if List.mem "KPT041" codes then 3 else if failed then 1 else 0 in
  { failed; codes; klass; exit_code }

let check_verdict ?slice ~limits ~file source =
  match Check.reports ~jobs:1 ~budget:limits ?slice [ (file, source) ] with
  | [ r ] -> verdict_of_report r
  | _ -> assert false

let verdict_to_string v =
  Printf.sprintf "{%s; %s; codes=[%s]; exit=%d}"
    (if v.failed then "fail" else "ok")
    v.klass
    (String.concat "," v.codes)
    v.exit_code

(* ---- paths ------------------------------------------------------------------- *)

(* a path: one way of pushing a source through the toolchain, producing
   the [Driver] outcome the CLI would print *)
type runner = limits:Kpt_predicate.Budget.limits -> file:string -> source:string -> Driver.outcome

type path = { path_name : string; run : runner }

let check_opts ~limits ~jobs ~reorder =
  {
    Driver.default_options with
    jobs = Some jobs;
    limits;
    reorder;
  }

let driver_path name ~jobs ~reorder =
  {
    path_name = name;
    run =
      (fun ~limits ~file ~source ->
        Driver.check (check_opts ~limits ~jobs ~reorder) [ (file, source) ]);
  }

let base_path = driver_path "check-j1" ~jobs:1 ~reorder:Kpt_predicate.Engine.Reorder_off

let builtin_paths =
  [
    driver_path "check-j3" ~jobs:3 ~reorder:Kpt_predicate.Engine.Reorder_off;
    driver_path "reorder-auto" ~jobs:1 ~reorder:Kpt_predicate.Engine.Reorder_auto;
  ]

(* ---- disagreements ----------------------------------------------------------- *)

type disagreement = {
  d_file : string;
  d_check : string;  (* e.g. "path:check-j1-vs-check-j3", "metamorphic:rename" *)
  d_detail : string;
  d_shrunk : string option;  (* minimised source, when shrinking applied *)
}

type spec_result = {
  r_file : string;
  r_verdict : verdict;  (* base-path verdict under the instance budget *)
  r_comparisons : int;
  r_disagreements : disagreement list;
}

let outcome_diff (a : Driver.outcome) (b : Driver.outcome) =
  if a.code <> b.code then Some (Printf.sprintf "exit codes differ: %d vs %d" a.code b.code)
  else if not (String.equal a.out b.out) then
    Some
      (Printf.sprintf "stdout differs (%d vs %d bytes)" (String.length a.out)
         (String.length b.out))
  else if not (String.equal a.err b.err) then
    Some
      (Printf.sprintf "stderr differs (%d vs %d bytes)" (String.length a.err)
         (String.length b.err))
  else None

let verdict_diff a b =
  if a = b then None
  else Some (Printf.sprintf "%s vs %s" (verdict_to_string a) (verdict_to_string b))

(* ---- shrinking --------------------------------------------------------------- *)

(* Greedy statement removal: as long as the disagreement predicate holds,
   try dropping each statement in turn and restart from the smaller
   program.  [still_bad] re-runs the specific failing comparison on the
   candidate source. *)
let shrink ~still_bad source =
  match Parser.program_of_string source with
  | exception _ -> None
  | ast ->
      let rec go ast =
        let n = List.length ast.Ast.p_stmts in
        if n <= 1 then ast
        else
          let rec try_drop i =
            if i >= n then ast
            else
              let cand = Mutate.drop_stmt i ast in
              if still_bad (Mutate.to_source cand) then go cand else try_drop (i + 1)
          in
          try_drop 0
      in
      let shrunk = go ast in
      Some (Mutate.to_source shrunk)

(* ---- one spec ---------------------------------------------------------------- *)

(* deterministic permutation of [0..n-1] keyed by a seed — a tiny local
   shuffle so the permutation transform is replayable from the corpus
   seed alone (rotate-and-swap driven by SplitMix-style mixing would be
   overkill; a keyed Fisher-Yates over a linear congruence suffices and
   keeps this module free of the generator library) *)
let keyed_permutation seed n =
  let state = ref Int64.(add seed 0x9E3779B97F4A7C15L) in
  let next_int bound =
    state := Int64.(add (mul !state 6364136223846793005L) 1442695040888963407L);
    Int64.to_int (Int64.rem (Int64.logand !state Int64.max_int) (Int64.of_int bound))
  in
  let a = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = next_int (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let run_spec ?(extra_paths = []) ?expected ?(seed = 0L) ~limits ~file ~source () =
  let comparisons = ref 0 in
  let disagreements = ref [] in
  let record check detail shrunk =
    disagreements :=
      { d_file = file; d_check = check; d_detail = detail; d_shrunk = shrunk }
      :: !disagreements
  in
  (* 1. byte-level path pairs under the instance budget *)
  let base = base_path.run ~limits ~file ~source in
  List.iter
    (fun p ->
      incr comparisons;
      let other = p.run ~limits ~file ~source in
      match outcome_diff base other with
      | None -> ()
      | Some detail ->
          let still_bad src =
            outcome_diff (base_path.run ~limits ~file ~source:src)
              (p.run ~limits ~file ~source:src)
            <> None
          in
          record
            (Printf.sprintf "path:%s-vs-%s" base_path.path_name p.path_name)
            detail (shrink ~still_bad source))
    (builtin_paths @ extra_paths);
  (* 2. the base verdict, and the gen-time envelope differential *)
  let base_verdict = check_verdict ~limits ~file source in
  (match expected with
  | None -> ()
  | Some e ->
      incr comparisons;
      match verdict_diff e base_verdict with
      | None -> ()
      | Some detail -> record "envelope" ("manifest vs run: " ^ detail) None);
  (* 3. verdict-level comparisons under the envelope budget (slicing and
     the metamorphic transforms may legitimately change byte output and
     resource consumption, never the verdict) *)
  let reference = check_verdict ~limits:envelope_limits ~file source in
  incr comparisons;
  (let sliced = check_verdict ~slice:true ~limits:envelope_limits ~file source in
   match verdict_diff reference sliced with
   | None -> ()
   | Some detail ->
       let still_bad src =
         verdict_diff
           (check_verdict ~limits:envelope_limits ~file src)
           (check_verdict ~slice:true ~limits:envelope_limits ~file src)
         <> None
       in
       record "path:slice" detail (shrink ~still_bad source));
  (match Parser.program_of_string source with
  | exception _ -> ()  (* unparseable input: the envelope check already caught it *)
  | ast ->
      let metamorphic name transform =
        incr comparisons;
        let run_transformed src =
          match Parser.program_of_string src with
          | exception _ -> None
          | ast -> (
              match transform ast with
              | None -> None
              | Some ast' ->
                  Some (check_verdict ~limits:envelope_limits ~file (Mutate.to_source ast')))
        in
        match run_transformed source with
        | None -> ()
        | Some v -> (
            match verdict_diff reference v with
            | None -> ()
            | Some detail ->
                let still_bad src =
                  match run_transformed src with
                  | None -> false
                  | Some v' ->
                      verdict_diff (check_verdict ~limits:envelope_limits ~file src) v' <> None
                in
                record ("metamorphic:" ^ name) detail (shrink ~still_bad source))
      in
      ignore ast;
      metamorphic "rename" (fun ast ->
          Some (Mutate.rename_vars (Mutate.fresh_renaming ast) ast));
      metamorphic "permute" (fun ast ->
          let n = List.length ast.Ast.p_stmts in
          if n <= 1 then None
          else Some (Mutate.permute_stmts (keyed_permutation seed n) ast)));
  {
    r_file = file;
    r_verdict = base_verdict;
    r_comparisons = !comparisons;
    r_disagreements = List.rev !disagreements;
  }

let path_names ~extra_paths =
  base_path.path_name
  :: (List.map (fun p -> p.path_name) (builtin_paths @ extra_paths)
     @ [ "slice"; "metamorphic:rename"; "metamorphic:permute" ])

(* ---- corpus aggregation ------------------------------------------------------ *)

(* one observation row, assembled by the CLI (which knows the manifest
   metadata this library must not depend on) *)
type obs = {
  o_family : string;
  o_size : int;
  o_fault : string;
  o_budget : string;  (* "none" or "fuel:N" *)
  o_ns : int64;  (* wall time of the spec's comparisons *)
  o_result : spec_result;
}

let count_by key rows =
  List.fold_left
    (fun acc r ->
      let k = key r in
      let n = try List.assoc k acc with Not_found -> 0 in
      (k, n + 1) :: List.remove_assoc k acc)
    [] rows
  |> List.sort compare

(* least-squares slope of log(ns) against log(size) — the time-vs-size
   fit per family.  [None] with fewer than two distinct sizes. *)
let loglog_slope points =
  let pts =
    List.filter_map
      (fun (size, ns) ->
        if size > 0 && Int64.compare ns 0L > 0 then
          Some (log (float_of_int size), log (Int64.to_float ns))
        else None)
      points
  in
  let n = List.length pts in
  let distinct_x = List.sort_uniq compare (List.map fst pts) in
  if n < 2 || List.length distinct_x < 2 then None
  else
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pts in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pts in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pts in
    let fn = float_of_int n in
    let denom = (fn *. sxx) -. (sx *. sx) in
    if abs_float denom < 1e-12 then None else Some (((fn *. sxy) -. (sx *. sy)) /. denom)

let disagreement_json d =
  Json.Obj
    [
      ("file", Json.String d.d_file);
      ("check", Json.String d.d_check);
      ("detail", Json.String d.d_detail);
      ( "shrunk",
        match d.d_shrunk with None -> Json.Null | Some s -> Json.String s );
    ]

(* The CORPUS_RESULTS.json document.  Everything except [timings] is a
   deterministic function of (corpus, toolchain); [timings] carries the
   wall-clock material the fits are computed from and is not pinned by
   any gate. *)
let report_json ~seed ~paths rows =
  let results = List.map (fun o -> o.o_result) rows in
  let comparisons = List.fold_left (fun a r -> a + r.r_comparisons) 0 results in
  let disagreements = List.concat_map (fun r -> r.r_disagreements) results in
  let total_ns = List.fold_left (fun a o -> Int64.add a o.o_ns) 0L rows in
  let by_class = count_by (fun o -> o.o_result.r_verdict.klass) rows in
  let lint_of o =
    let v = o.o_result.r_verdict in
    if v.failed then "errored" else if v.codes <> [] then "warned" else "clean"
  in
  let families = List.sort_uniq compare (List.map (fun o -> o.o_family) rows) in
  let fits =
    List.filter_map
      (fun fam ->
        let points =
          List.filter_map
            (fun o -> if o.o_family = fam then Some (o.o_size, o.o_ns) else None)
            rows
        in
        match loglog_slope points with
        | None -> None
        | Some slope ->
            Some
              (Json.Obj
                 [
                   ("family", Json.String fam);
                   ("points", Json.Int (List.length points));
                   ("loglog_slope", Json.Float slope);
                 ]))
      families
  in
  let budgeted = List.filter (fun o -> o.o_budget <> "none") rows in
  let exhausted =
    List.length (List.filter (fun o -> o.o_result.r_verdict.klass = "exhausted") budgeted)
  in
  let specs = List.length rows in
  Json.Obj
    [
      ( "corpus",
        Json.Obj
          [
            ("specs", Json.Int specs);
            ("seed", Json.String seed);
            ("families", Json.List (List.map (fun f -> Json.String f) families));
          ] );
      ( "difftest",
        Json.Obj
          [
            ("paths", Json.List (List.map (fun p -> Json.String p) paths));
            ("comparisons", Json.Int comparisons);
            ("disagreements", Json.Int (List.length disagreements));
            ( "pass_rate",
              Json.Float
                (if comparisons = 0 then 1.0
                 else
                   float_of_int (comparisons - List.length disagreements)
                   /. float_of_int comparisons) );
            ("failures", Json.List (List.map disagreement_json disagreements));
          ] );
      ("outcomes", Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) by_class));
      ( "lint",
        Json.Obj
          (List.map (fun (k, n) -> (k, Json.Int n)) (count_by lint_of rows)) );
      ( "budget",
        Json.Obj
          [
            ("budgeted_runs", Json.Int (List.length budgeted));
            ("exhausted", Json.Int exhausted);
            ( "exhaustion_rate",
              Json.Float
                (if budgeted = [] then 0.0
                 else float_of_int exhausted /. float_of_int (List.length budgeted)) );
          ] );
      ("fits", Json.List fits);
      ("timings", Json.Obj [ ("total_ns", Json.Int (Int64.to_int total_ns)) ]);
    ]
