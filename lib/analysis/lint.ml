open Kpt_syntax
open Kpt_predicate
open Kpt_unity
open Kpt_core
module S = Rw.S
module D = Diagnostic

(* ---- declaration environment --------------------------------------------- *)

type env = {
  file : string option;
  vars : S.t;  (* declared base names (scalars and arrays) *)
  var_ty : (string, Ast.ty) Hashtbl.t;
  var_span : (string, Loc.span) Hashtbl.t;
  enums : (string, int) Hashtbl.t;  (* enum literal → value index *)
  procs : (string, S.t * Loc.span) Hashtbl.t;
}

let env_of_program ?file (p : Ast.program) =
  let var_ty = Hashtbl.create 16 and var_span = Hashtbl.create 16 in
  let enums = Hashtbl.create 16 in
  let vars =
    List.fold_left
      (fun acc (names, ty) ->
        (match ty with
        | Ast.Tenum vs | Ast.Tarray (Ast.Tenum vs, _) ->
            List.iteri (fun i v -> Hashtbl.replace enums v i) vs
        | _ -> ());
        List.fold_left
          (fun acc (name, span) ->
            Hashtbl.replace var_ty name ty;
            if not (Hashtbl.mem var_span name) then Hashtbl.replace var_span name span;
            S.add name acc)
          acc names)
      S.empty p.Ast.p_vars
  in
  let procs = Hashtbl.create 8 in
  List.iter
    (fun (name, pvars, span) ->
      Hashtbl.replace procs name (S.of_list pvars, span))
    p.Ast.p_processes;
  { file; vars; var_ty; var_span; enums; procs }

let stmt_label i (s : Ast.stmt) =
  match s.Ast.s_name with Some n -> n | None -> Printf.sprintf "statement %d" (i + 1)

let names set = String.concat ", " (S.elements set)

(* ---- constant folding ----------------------------------------------------- *)

type const = CB of bool | CN of int

let rec fold env (e : Ast.expr) =
  let bool2 a b op =
    match (fold env a, fold env b) with
    | Some (CB x), Some (CB y) -> Some (CB (op x y))
    | _ -> None
  in
  let num2 a b op =
    match (fold env a, fold env b) with
    | Some (CN x), Some (CN y) -> Some (op x y)
    | _ -> None
  in
  match e.Ast.expr with
  | Ast.Etrue -> Some (CB true)
  | Ast.Efalse -> Some (CB false)
  | Ast.Enum n -> Some (CN n)
  | Ast.Eident name ->
      if S.mem name env.vars then None
      else Option.map (fun k -> CN k) (Hashtbl.find_opt env.enums name)
  | Ast.Enot a -> (
      match fold env a with Some (CB b) -> Some (CB (not b)) | _ -> None)
  | Ast.Eand (a, b) -> (
      match (fold env a, fold env b) with
      | Some (CB false), _ | _, Some (CB false) -> Some (CB false)
      | Some (CB true), Some (CB true) -> Some (CB true)
      | _ -> None)
  | Ast.Eor (a, b) -> (
      match (fold env a, fold env b) with
      | Some (CB true), _ | _, Some (CB true) -> Some (CB true)
      | Some (CB false), Some (CB false) -> Some (CB false)
      | _ -> None)
  | Ast.Eimp (a, b) -> (
      match (fold env a, fold env b) with
      | Some (CB false), _ | _, Some (CB true) -> Some (CB true)
      | Some (CB true), Some (CB false) -> Some (CB false)
      | _ -> None)
  | Ast.Eiff (a, b) -> bool2 a b ( = )
  | Ast.Eeq (a, b) -> (
      match (fold env a, fold env b) with
      | Some (CN x), Some (CN y) -> Some (CB (x = y))
      | Some (CB x), Some (CB y) -> Some (CB (x = y))
      | _ -> None)
  | Ast.Ene (a, b) -> (
      match (fold env a, fold env b) with
      | Some (CN x), Some (CN y) -> Some (CB (x <> y))
      | Some (CB x), Some (CB y) -> Some (CB (x <> y))
      | _ -> None)
  | Ast.Elt (a, b) -> num2 a b (fun x y -> CB (x < y))
  | Ast.Ele (a, b) -> num2 a b (fun x y -> CB (x <= y))
  | Ast.Egt (a, b) -> num2 a b (fun x y -> CB (x > y))
  | Ast.Ege (a, b) -> num2 a b (fun x y -> CB (x >= y))
  | Ast.Eadd (a, b) -> num2 a b (fun x y -> CN (x + y))
  | Ast.Esub (a, b) -> num2 a b (fun x y -> CN (max 0 (x - y)))  (* saturating *)
  | Ast.Eindex _ | Ast.Eknow _ | Ast.Egroup _ -> None

(* ---- pass: knowledge locality + interference (eq. 13) --------------------- *)

(* A statement whose guard names exactly one process in its knowledge
   operators is attributed to that process: eq. 13 makes [K_i p] a
   predicate on [vars_i], so everything the guard reads {e outside} the
   operators, and everything the statement writes, must be local to it. *)
let knowledge_pass env (stmts : (int * Ast.stmt * Rw.stmt_rw) list) =
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  let attributed = ref [] in
  List.iter
    (fun (i, s, rw) ->
      let label = stmt_label i s in
      List.iter
        (fun (k : Rw.kop) ->
          List.iter
            (fun agent ->
              if not (Hashtbl.mem env.procs agent) then
                emit
                  (D.error ?file:env.file ~span:k.Rw.kspan ~code:"KPT013"
                     (Printf.sprintf
                        "knowledge operator in %s refers to undeclared process %s" label
                        agent)))
            k.Rw.agents)
        rw.Rw.kops;
      let agents =
        List.concat_map (fun (k : Rw.kop) -> k.Rw.agents) rw.Rw.kops
        |> List.filter (Hashtbl.mem env.procs)
        |> List.sort_uniq compare
      in
      match agents with
      | [ p ] ->
          let pvars, _ = Hashtbl.find env.procs p in
          let guard_span =
            match s.Ast.s_guard with Some g -> Some g.Ast.espan | None -> None
          in
          let plain = S.inter rw.Rw.guard_plain env.vars in
          let non_local = S.diff plain pvars in
          if not (S.is_empty non_local) then
            emit
              (D.error ?file:env.file ?span:guard_span ~code:"KPT012"
                 ~hint:
                   (Printf.sprintf
                      "move the test under K[%s], or extend %s's variable set" p p)
                 (Printf.sprintf
                    "guard of %s mixes K[%s] with reads of %s, which %s cannot \
                     observe (eq. 13 makes knowledge local to a process's variables)"
                    label p (names non_local) p));
          let foreign = S.diff (S.inter rw.Rw.writes env.vars) pvars in
          if not (S.is_empty foreign) then
            emit
              (D.warning ?file:env.file ~span:s.Ast.s_span ~code:"KPT030"
                 (Printf.sprintf
                    "%s acts on %s's knowledge but writes %s, which %s cannot access"
                    label p (names foreign) p));
          attributed := (p, S.inter rw.Rw.writes env.vars, i, s) :: !attributed
      | _ -> ())
    stmts;
  (* interference: the same variable written on behalf of two processes *)
  let att = List.rev !attributed in
  List.iteri
    (fun n (p, writes, _, _) ->
      List.iteri
        (fun m (q, writes', i', s') ->
          if m > n && p <> q then begin
            let shared = S.inter writes writes' in
            if not (S.is_empty shared) then
              emit
                (D.warning ?file:env.file ~span:s'.Ast.s_span ~code:"KPT031"
                   (Printf.sprintf
                      "interference: %s is written on behalf of both %s and %s"
                      (names shared) p q));
            ignore i'
          end)
        att)
    att;
  List.rev !ds

(* ---- pass: K-polarity (eq. 25, Figures 1-2) ------------------------------- *)

let polarity_pass env (stmts : (int * Ast.stmt * Rw.stmt_rw) list) =
  let ds = ref [] in
  List.iter
    (fun (i, s, rw) ->
      let label = stmt_label i s in
      List.iter
        (fun (k : Rw.kop) ->
          let who = String.concat "," k.Rw.agents in
          if k.Rw.negative_position then
            ds :=
              D.warning ?file:env.file ~span:k.Rw.kspan ~code:"KPT011"
                ~hint:"rephrase the guard so knowledge appears positively"
                (Printf.sprintf
                   "knowledge operator K[%s] in negative position in the guard of \
                    %s: Ĝ need not be monotonic, so the KBP may be ill-posed \
                    (eq. 25)"
                   who label)
              :: !ds;
          let negs = S.inter k.Rw.negated_reads env.vars in
          if not (S.is_empty negs) then
            ds :=
              D.warning ?file:env.file ~span:k.Rw.kspan ~code:"KPT010"
                ~hint:
                  "knowledge of negated facts can be lost along a run; consider \
                   a positively-phrased, stable fact"
                (Printf.sprintf
                   "K[%s] is applied to a negated fact (%s occurs under negation): \
                    possibly ill-posed KBP — SI = strongest x : [ŜP.x ⇒ x] may \
                    have no solution or lose monotonicity in init (Figures 1-2)"
                   who (names negs))
              :: !ds)
        rw.Rw.kops)
    stmts;
  List.rev !ds

(* ---- pass: vacuity / hygiene ---------------------------------------------- *)

let is_identity_pair (t, (e : Ast.expr)) =
  match (t, e.Ast.expr) with
  | Ast.Tvar v, Ast.Eident v' -> v = v'
  | Ast.Tindex (a, i), Ast.Eindex (a', i') -> a = a' && Ast.equal_expr i i'
  | _ -> false

let hygiene_pass env (p : Ast.program) (stmts : (int * Ast.stmt * Rw.stmt_rw) list) =
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  (* variable usage *)
  let init_reads = Rw.reads ~vars:env.vars p.Ast.p_init in
  let reads, writes =
    List.fold_left
      (fun (r, w) (_, _, rw) -> (S.union r (Rw.all_reads rw), S.union w rw.Rw.writes))
      (init_reads, S.empty) stmts
  in
  S.iter
    (fun v ->
      let span = Hashtbl.find_opt env.var_span v in
      if (not (S.mem v reads)) && not (S.mem v writes) then
        emit
          (D.warning ?file:env.file ?span ~code:"KPT020"
             ~hint:"delete the declaration"
             (Printf.sprintf "variable %s is never used" v))
      else if S.mem v writes && not (S.mem v reads) then
        emit
          (D.info ?file:env.file ?span ~code:"KPT021"
             (Printf.sprintf
                "variable %s is write-only: it is assigned but never read or \
                 constrained by init"
                v)))
    env.vars;
  (* per-statement checks *)
  List.iter
    (fun (i, (s : Ast.stmt), _) ->
      let label = stmt_label i s in
      if
        List.length s.Ast.s_targets = List.length s.Ast.s_exprs
        && List.for_all is_identity_pair
             (List.combine s.Ast.s_targets s.Ast.s_exprs)
      then
        emit
          (D.warning ?file:env.file ~span:s.Ast.s_span ~code:"KPT022"
             (Printf.sprintf "%s assigns every target to itself (a no-op)" label));
      match s.Ast.s_guard with
      | None -> ()
      | Some g -> (
          match fold env g with
          | Some (CB false) ->
              emit
                (D.warning ?file:env.file ~span:g.Ast.espan ~code:"KPT024"
                   (Printf.sprintf
                      "guard of %s is constantly false: the statement can never be \
                       selected"
                      label))
          | Some (CB true) ->
              emit
                (D.info ?file:env.file ~span:g.Ast.espan ~code:"KPT025"
                   (Printf.sprintf "guard of %s is trivially true" label))
          | _ -> ()))
    stmts;
  (* duplicate statements *)
  List.iteri
    (fun n (i, s, _) ->
      List.iteri
        (fun m (j, s', _) ->
          if m > n && Ast.equal_stmt s s' then
            emit
              (D.warning ?file:env.file ~span:s'.Ast.s_span ~code:"KPT023"
                 (Printf.sprintf "%s duplicates %s (same targets, right-hand \
                                  sides and guard)"
                    (stmt_label j s') (stmt_label i s))))
        stmts)
    stmts;
  List.rev !ds

(* ---- pass: nat(k) range --------------------------------------------------- *)

let nat_bound env (e : Ast.expr) =
  let bound = function
    | Ast.Tnat k -> Some k
    | Ast.Tarray (Ast.Tnat k, _) -> Some k
    | _ -> None
  in
  match e.Ast.expr with
  | Ast.Eident v | Ast.Eindex (v, _) ->
      Option.bind (Hashtbl.find_opt env.var_ty v) (fun ty ->
          Option.map (fun k -> (v, k)) (bound ty))
  | _ -> None

let range_pass env (p : Ast.program) (stmts : (int * Ast.stmt * Rw.stmt_rw) list) =
  let ds = ref [] in
  let check span cmp a b =
    (* [cmp]: the comparison's outcome as [var OP const]; mirror if the
       constant is on the left *)
    let report v k n verdict =
      ds :=
        D.warning ?file:env.file ~span ~code:"KPT026"
          (Printf.sprintf
             "%s : nat(%d) is compared with %d, which is outside its range — the \
              comparison is always %b"
             v k n verdict)
        :: !ds
    in
    match (nat_bound env a, fold env b) with
    | Some (v, k), Some (CN n) when n > k -> report v k n (fst cmp)
    | _ -> (
        match (fold env a, nat_bound env b) with
        | Some (CN n), Some (v, k) when n > k -> report v k n (snd cmp)
        | _ -> ())
  in
  let rec walk (e : Ast.expr) =
    let span = e.Ast.espan in
    match e.Ast.expr with
    | Ast.Etrue | Ast.Efalse | Ast.Enum _ | Ast.Eident _ -> ()
    | Ast.Eindex (_, i) -> walk i
    | Ast.Enot a -> walk a
    | Ast.Eand (a, b) | Ast.Eor (a, b) | Ast.Eimp (a, b) | Ast.Eiff (a, b)
    | Ast.Eadd (a, b) | Ast.Esub (a, b) ->
        walk a;
        walk b
    (* (outcome if var OP const, outcome if const OP var) for out-of-range const *)
    | Ast.Eeq (a, b) -> check span (false, false) a b; walk a; walk b
    | Ast.Ene (a, b) -> check span (true, true) a b; walk a; walk b
    | Ast.Elt (a, b) -> check span (true, false) a b; walk a; walk b
    | Ast.Ele (a, b) -> check span (true, false) a b; walk a; walk b
    | Ast.Egt (a, b) -> check span (false, true) a b; walk a; walk b
    | Ast.Ege (a, b) -> check span (false, true) a b; walk a; walk b
    | Ast.Eknow (_, a) | Ast.Egroup (_, _, a) -> walk a
  in
  walk p.Ast.p_init;
  List.iter
    (fun (_, (s : Ast.stmt), _) ->
      List.iter walk s.Ast.s_exprs;
      List.iter (function Ast.Tindex (_, i) -> walk i | Ast.Tvar _ -> ()) s.Ast.s_targets;
      Option.iter walk s.Ast.s_guard)
    stmts;
  List.rev !ds

(* ---- pass: process declarations ------------------------------------------- *)

let process_pass env (p : Ast.program) =
  let ds = ref [] in
  List.iter
    (fun (name, pvars, span) ->
      List.iter
        (fun v ->
          if not (S.mem v env.vars) then
            ds :=
              D.error ?file:env.file ~span ~code:"KPT014"
                (Printf.sprintf "process %s lists undeclared variable %s" name v)
              :: !ds)
        pvars)
    p.Ast.p_processes;
  List.rev !ds

(* ---- entry points ---------------------------------------------------------- *)

let lint_ast ?file (p : Ast.program) =
  let env = env_of_program ?file p in
  let stmts =
    List.mapi (fun i s -> (i, s, Rw.of_stmt ~vars:env.vars s)) p.Ast.p_stmts
  in
  List.sort D.compare
    (process_pass env p @ knowledge_pass env stmts @ polarity_pass env stmts
    @ hygiene_pass env p stmts @ range_pass env p stmts)

let lint_source ?file src =
  match Parser.program_of_string src with
  | ast -> (
      let ds = lint_ast ?file ast in
      match Elaborate.program ast with
      | _ -> ds
      | exception (Elaborate.Elab_error _ as e) ->
          List.sort D.compare (Option.get (D.of_syntax_exn ?file e) :: ds)
      | exception Invalid_argument msg ->
          List.sort D.compare (D.error ?file ~code:"KPT003" msg :: ds))
  | exception ((Token.Lex_error _ | Parser.Parse_error _) as e) ->
      [ Option.get (D.of_syntax_exn ?file e) ]

(* The semantic tier rides on top of [lint_source]: re-elaborate the
   file and hand the loaded spec to {!Semantic.analyse}.  An
   unsatisfiable initial condition is the one semantic finding that
   cannot survive elaboration (both program constructors reject it), so
   it is recovered here from the elaboration error's message and
   upgraded from the generic KPT003 to its own KPT103 code. *)
let unsat_init_msg = "unsatisfiable initial condition"

let contains_unsat_init msg =
  let n = String.length unsat_init_msg and l = String.length msg in
  let rec go i = i + n <= l && (String.sub msg i n = unsat_init_msg || go (i + 1)) in
  go 0

let lint_source_semantic ?budget ~file src =
  let ds = lint_source ~file src in
  match Elaborate.program (Parser.program_of_string src) with
  | sp, kbp -> List.sort D.compare (ds @ Semantic.analyse ~file ?budget (sp, kbp))
  | exception Elaborate.Elab_error (span, msg) when contains_unsat_init msg ->
      let ds =
        List.filter
          (fun (d : D.t) -> not (d.D.code = "KPT003" && contains_unsat_init d.D.message))
          ds
      in
      List.sort D.compare
        (D.error ~file ?span ~code:"KPT103"
           ~hint:"no state satisfies init: the program has no runs at all"
           (Printf.sprintf "%s (eq. 5: SI = sst.init is the empty predicate)" msg)
        :: ds)
  | exception (Token.Lex_error _ | Parser.Parse_error _ | Elaborate.Elab_error _)
  | exception Invalid_argument _ ->
      (* already reported among [ds] by [lint_source] *)
      ds

(* ---- JSON rendering (the [kpt lint --json] shape) -------------------------- *)

(* Mirrors [Check.render_json] minus the per-file stats section, so the
   two machine formats parse with the same code.  [Check] depends on this
   module, so the (small) emitters live here rather than being shared. *)
let severity_counts diags =
  List.fold_left
    (fun (e, w, i) (d : D.t) ->
      match d.D.severity with
      | D.Error -> (e + 1, w, i)
      | D.Warning -> (e, w + 1, i)
      | D.Info -> (e, w, i + 1))
    (0, 0, 0) diags

let render_json ppf (reports : (string * D.t list) list) =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let all = List.concat_map snd reports in
  let e, w, i = severity_counts all in
  pf "{\n";
  pf "  \"files\": %d,\n  \"errors\": %d,\n  \"warnings\": %d,\n  \"infos\": %d,\n"
    (List.length reports) e w i;
  pf "  \"reports\": [";
  List.iteri
    (fun n (file, ds) ->
      pf "%s\n" (if n = 0 then "" else ",");
      let e, w, i = severity_counts ds in
      pf "  {\n";
      pf "    \"file\": \"%s\",\n" (Stats.json_escape file);
      pf "    \"status\": \"%s\",\n"
        (if List.exists D.is_error ds then "fail" else "ok");
      pf "    \"findings\": { \"errors\": %d, \"warnings\": %d, \"infos\": %d },\n" e w i;
      pf "    \"diagnostics\": [";
      List.iteri
        (fun j (d : D.t) ->
          pf "%s\n      { \"code\": \"%s\", \"severity\": \"%s\", \"message\": \"%s\" }"
            (if j = 0 then "" else ",")
            (Stats.json_escape d.D.code)
            (D.severity_label d.D.severity)
            (Stats.json_escape d.D.message))
        ds;
      if ds <> [] then pf "\n    ";
      pf "]\n  }")
    reports;
  if reports <> [] then pf "\n  ";
  pf "]\n}\n";
  Format.fprintf ppf "%s" (Buffer.contents b)

(* The file-set driver behind [kpt lint].  Rendering and exit policy are
   deliberately decoupled: [--quiet] silences every line of output
   (diagnostics, summaries, the "no findings" note) but the exit code is
   computed from the findings alone — errors always fail, warnings fail
   only under [--warn-error] — so scripts can rely on the code while
   discarding the text.  Lives here (not in bin/) so the flag matrix is
   unit-testable. *)
let run_sources ?jobs ?(semantic = false) ?budget ?(json = false)
    ?(warn_error = false) ?(quiet = false) ppf sources =
  (* findings are computed (possibly on worker domains — [jobs] defaults
     to [Kpt_par.recommended_jobs]) before any rendering, which happens
     here, in input order: output is independent of the pool size *)
  let task (file, src) =
    if semantic then lint_source_semantic ?budget ~file src
    else lint_source ~file src
  in
  let per_file = Kpt_par.map ?jobs task sources in
  if json && not quiet then
    render_json ppf (List.map2 (fun (file, _) ds -> (file, ds)) sources per_file);
  let all =
    List.concat
      (List.map2
         (fun (_, src) ds ->
           if (not quiet) && not json then
             List.iter
               (fun d -> Format.fprintf ppf "@[<v>%a@]@." (D.pp_excerpt ~src) d)
               ds;
           ds)
         sources per_file)
  in
  if (not quiet) && not json then begin
    match (all, sources) with
    | [], [ (p, _) ] -> Format.fprintf ppf "%s: no findings@." p
    | [], _ -> Format.fprintf ppf "%d files: no findings@." (List.length sources)
    | ds, _ -> Format.fprintf ppf "%s@." (D.summary ds)
  end;
  D.exit_code ~warn_error all

(* ---- semantic granularity: in-memory programs and KBPs --------------------- *)

module V = Rw.V

type spol = SPos | SNeg | SBoth

let sflip = function SPos -> SNeg | SNeg -> SPos | SBoth -> SBoth

let of_vars vs = List.fold_left (fun acc v -> V.add (Space.idx v) acc) V.empty vs

let vnames sp set =
  String.concat ", "
    (List.map (fun i -> Space.name (Rw.var_of_idx sp i)) (V.elements set))

(* variable occurrences at negative (or mixed) polarity in an expression *)
let expr_negated_vars e =
  let acc = ref V.empty in
  let grab e = acc := V.union !acc (of_vars (Expr.vars_of e)) in
  let rec go pol (e : Expr.t) =
    match e with
    | Expr.Cbool _ | Expr.Cint _ -> ()
    | Expr.Var _ -> if pol <> SPos then grab e
    | Expr.Not a -> go (sflip pol) a
    | Expr.And (a, b) | Expr.Or (a, b) ->
        go pol a;
        go pol b
    | Expr.Imp (a, b) ->
        go (sflip pol) a;
        go pol b
    | Expr.Iff (a, b) ->
        go SBoth a;
        go SBoth b
    | Expr.Ite (c, t, f) ->
        go SBoth c;
        go pol t;
        go pol f
    | Expr.Eq (a, b) | Expr.Lt (a, b) | Expr.Le (a, b)
    | Expr.Add (a, b) | Expr.Subsat (a, b) ->
        (* a comparison's variables occur at the comparison's polarity *)
        if pol <> SPos then begin
          grab a;
          grab b
        end
  in
  go SPos e;
  !acc

(* knowledge operators of a Kform guard, with position polarity and the
   negated reads of their bodies — the semantic mirror of {!Rw.kop} *)
type skop = {
  sagents : string list;
  snegated : V.t;
  sneg_position : bool;
}

let kform_ops guard =
  let ops = ref [] in
  let rec body_negs pol f acc =
    match f with
    | Kform.Base e ->
        if pol = SPos then V.union acc (expr_negated_vars e)
        else V.union acc (of_vars (Expr.vars_of e))
    | Kform.Knot f -> body_negs (sflip pol) f acc
    | Kform.Kand (a, b) | Kform.Kor (a, b) ->
        body_negs pol b (body_negs pol a acc)
    | Kform.Kimp (a, b) -> body_negs pol b (body_negs (sflip pol) a acc)
    | Kform.K (_, f) | Kform.Ek (_, f) | Kform.Ck (_, f) | Kform.Dk (_, f) ->
        (* nested operators get their own entry via [go] *)
        body_negs pol f acc
  in
  let rec go pol f =
    match f with
    | Kform.Base _ -> ()
    | Kform.Knot f -> go (sflip pol) f
    | Kform.Kand (a, b) | Kform.Kor (a, b) ->
        go pol a;
        go pol b
    | Kform.Kimp (a, b) ->
        go (sflip pol) a;
        go pol b
    | Kform.K (p, body) -> op pol [ p ] body
    | Kform.Ek (ps, body) | Kform.Ck (ps, body) | Kform.Dk (ps, body) ->
        op pol ps body
  and op pol agents body =
    ops :=
      {
        sagents = agents;
        snegated = body_negs SPos body V.empty;
        sneg_position = pol <> SPos;
      }
      :: !ops;
    go SPos body
  in
  go SPos guard;
  List.rev !ops

(* reads of the guard outside any knowledge operator *)
let rec kform_plain_reads = function
  | Kform.Base e -> of_vars (Expr.vars_of e)
  | Kform.Knot f -> kform_plain_reads f
  | Kform.Kand (a, b) | Kform.Kor (a, b) | Kform.Kimp (a, b) ->
      V.union (kform_plain_reads a) (kform_plain_reads b)
  | Kform.K _ | Kform.Ek _ | Kform.Ck _ | Kform.Dk _ -> V.empty

let rec kform_all_reads = function
  | Kform.Base e -> of_vars (Expr.vars_of e)
  | Kform.Knot f -> kform_all_reads f
  | Kform.Kand (a, b) | Kform.Kor (a, b) | Kform.Kimp (a, b) ->
      V.union (kform_all_reads a) (kform_all_reads b)
  | Kform.K (_, f) | Kform.Ek (_, f) | Kform.Ck (_, f) | Kform.Dk (_, f) ->
      kform_all_reads f

let init_vars sp init =
  Rw.vars_of_support sp (Bdd.support (Space.manager sp) init)

let usage_diags ?file sp ~init ~reads ~writes =
  let iv = init_vars sp init in
  let ds = ref [] in
  List.iter
    (fun v ->
      let i = Space.idx v in
      let read = V.mem i reads || V.mem i iv in
      let written = V.mem i writes in
      if (not read) && not written then
        ds :=
          D.warning ?file ~code:"KPT020"
            (Printf.sprintf "variable %s is never used" (Space.name v))
          :: !ds
      else if written && not read then
        ds :=
          D.info ?file ~code:"KPT021"
            (Printf.sprintf
               "variable %s is write-only: it is assigned but never read or \
                constrained by init"
               (Space.name v))
          :: !ds)
    (Space.vars sp);
  List.rev !ds

let lint_program ?file prog =
  let sp = Program.space prog in
  let stmts = Program.statements prog in
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  List.iter
    (fun (s : Stmt.t) ->
      if
        s.Stmt.assigns <> []
        && List.for_all (fun (v, rhs) -> rhs = Expr.Var v) s.Stmt.assigns
      then
        emit
          (D.warning ?file ~code:"KPT022"
             (Printf.sprintf "%s assigns every target to itself (a no-op)"
                (Stmt.name s)));
      if Bdd.is_false (Stmt.guard_pred sp s) then
        emit
          (D.warning ?file ~code:"KPT024"
             (Printf.sprintf
                "guard of %s is unsatisfiable: the statement can never be selected"
                (Stmt.name s))))
    stmts;
  let key (s : Stmt.t) =
    (s.Stmt.guard, List.sort (fun (a, _) (b, _) -> compare a b) s.Stmt.assigns)
  in
  List.iteri
    (fun n s ->
      List.iteri
        (fun m s' ->
          if m > n && key s = key s' then
            emit
              (D.warning ?file ~code:"KPT023"
                 (Printf.sprintf
                    "%s duplicates %s (same guard and assignments)" (Stmt.name s')
                    (Stmt.name s))))
        stmts)
    stmts;
  let reads =
    List.fold_left (fun acc s -> V.union acc (Rw.stmt_reads sp s)) V.empty stmts
  in
  let writes =
    List.fold_left (fun acc s -> V.union acc (Rw.stmt_writes s)) V.empty stmts
  in
  List.sort D.compare
    (List.rev !ds @ usage_diags ?file sp ~init:(Program.init prog) ~reads ~writes)

let lint_kbp ?file kbp =
  let sp = Kbp.space kbp in
  let procs = Kbp.processes kbp in
  let find_proc name = List.find_opt (fun p -> Process.name p = name) procs in
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  let attributed = ref [] in
  let kstmts = Kbp.kstmts kbp in
  List.iter
    (fun (s : Kbp.kstmt) ->
      let ops = kform_ops s.Kbp.kguard in
      let writes = of_vars (List.map fst s.Kbp.kassigns) in
      (* polarity (eq. 25, Figures 1-2) *)
      List.iter
        (fun op ->
          let who = String.concat "," op.sagents in
          if op.sneg_position then
            emit
              (D.warning ?file ~code:"KPT011"
                 (Printf.sprintf
                    "knowledge operator K[%s] in negative position in the guard \
                     of %s: Ĝ need not be monotonic, so the KBP may be ill-posed \
                     (eq. 25)"
                    who s.Kbp.kname));
          if not (V.is_empty op.snegated) then
            emit
              (D.warning ?file ~code:"KPT010"
                 (Printf.sprintf
                    "K[%s] in %s is applied to a negated fact (%s occurs under \
                     negation): possibly ill-posed KBP (Figures 1-2)"
                    who s.Kbp.kname
                    (vnames sp op.snegated))))
        ops;
      (* locality (eq. 13) *)
      List.iter
        (fun op ->
          List.iter
            (fun a ->
              if find_proc a = None then
                emit
                  (D.error ?file ~code:"KPT013"
                     (Printf.sprintf
                        "knowledge operator in %s refers to undeclared process %s"
                        s.Kbp.kname a)))
            op.sagents)
        ops;
      let agents =
        List.concat_map (fun op -> op.sagents) ops
        |> List.filter (fun a -> find_proc a <> None)
        |> List.sort_uniq compare
      in
      (match agents with
      | [ p ] ->
          let proc = Option.get (find_proc p) in
          let local = of_vars (Process.vars proc) in
          let non_local = V.diff (kform_plain_reads s.Kbp.kguard) local in
          if not (V.is_empty non_local) then
            emit
              (D.error ?file ~code:"KPT012"
                 (Printf.sprintf
                    "guard of %s mixes K[%s] with reads of %s, which %s cannot \
                     observe (eq. 13)"
                    s.Kbp.kname p (vnames sp non_local) p));
          let foreign = V.diff writes local in
          if not (V.is_empty foreign) then
            emit
              (D.warning ?file ~code:"KPT030"
                 (Printf.sprintf
                    "%s acts on %s's knowledge but writes %s, which %s cannot \
                     access"
                    s.Kbp.kname p (vnames sp foreign) p));
          attributed := (p, writes, s.Kbp.kname) :: !attributed
      | _ -> ());
      (* hygiene *)
      if
        s.Kbp.kassigns <> []
        && List.for_all (fun (v, rhs) -> rhs = Expr.Var v) s.Kbp.kassigns
      then
        emit
          (D.warning ?file ~code:"KPT022"
             (Printf.sprintf "%s assigns every target to itself (a no-op)"
                s.Kbp.kname)))
    kstmts;
  (* interference between processes *)
  let att = List.rev !attributed in
  List.iteri
    (fun n (p, w, _) ->
      List.iteri
        (fun m (q, w', name') ->
          if m > n && p <> q then begin
            let shared = V.inter w w' in
            if not (V.is_empty shared) then
              emit
                (D.warning ?file ~code:"KPT031"
                   (Printf.sprintf
                      "interference at %s: %s is written on behalf of both %s and \
                       %s"
                      name' (vnames sp shared) p q))
          end)
        att)
    att;
  (* duplicates *)
  let key (s : Kbp.kstmt) =
    (s.Kbp.kguard, List.sort (fun (a, _) (b, _) -> compare a b) s.Kbp.kassigns)
  in
  List.iteri
    (fun n s ->
      List.iteri
        (fun m s' ->
          if m > n && key s = key s' then
            emit
              (D.warning ?file ~code:"KPT023"
                 (Printf.sprintf "%s duplicates %s (same guard and assignments)"
                    s'.Kbp.kname s.Kbp.kname)))
        kstmts)
    kstmts;
  let reads =
    List.fold_left
      (fun acc (s : Kbp.kstmt) ->
        let rhs =
          List.fold_left
            (fun acc (_, rhs) -> V.union acc (of_vars (Expr.vars_of rhs)))
            V.empty s.Kbp.kassigns
        in
        V.union acc (V.union rhs (kform_all_reads s.Kbp.kguard)))
      V.empty kstmts
  in
  let writes =
    List.fold_left
      (fun acc (s : Kbp.kstmt) -> V.union acc (of_vars (List.map fst s.Kbp.kassigns)))
      V.empty kstmts
  in
  List.sort D.compare
    (List.rev !ds @ usage_diags ?file sp ~init:(Kbp.init kbp) ~reads ~writes)
