(** The bundled-protocol resilience matrix: every builder re-verified
    under every fault model ([kpt matrix]).

    The paper's prediction, which the CI golden pins: the transmit
    protocol's properties survive its own §6.3 channel (loss +
    duplication + ⊥-detectable corruption = {!Kpt_fault.Model.lossy}),
    while {e undetectable} value corruption breaks safety and the
    knowledge discharge obligations, and crash/stop breaks liveness. *)

module Matrix = Kpt_fault.Matrix
module Model = Kpt_fault.Model

val subjects : Matrix.subject list
(** transmit (full §6 obligation set: 34-35, 54, 61-62, 55-56), abp,
    stenning and window (each: 34-35), all at n = 2, a = 2. *)

val run :
  ?budget:Kpt_predicate.Budget.limits ->
  ?faults:(string * Model.t) list ->
  unit ->
  Matrix.t
(** Evaluate the matrix ({!Matrix.run} over {!subjects}); [faults]
    defaults to {!Matrix.default_faults}. *)
