open Kpt_predicate
open Kpt_core

type outcome =
  | Standard of { reachable : int; si_nodes : int }
  | Kbp_converged of { steps : int; states : int }
  | Kbp_cycle of { period : int }

type t = {
  file : string;
  variables : int;
  statements : int;
  state_space : Bigcount.t;
  outcome : outcome;
  bdd : Bdd.stats;
  counters : (string * int) list;
  spans : (string * int64 * int) list;
}

let collect ~file (sp, kbp) =
  Kpt_obs.reset ();
  let m = Space.manager sp in
  let outcome =
    if Kbp.is_standard kbp then begin
      let prog = Kpt_obs.time "to_standard" (fun () -> Kbp.to_standard_program kbp) in
      let si = Kpt_obs.time "si" (fun () -> Kpt_unity.Program.si prog) in
      Standard { reachable = Space.count_states_of sp si; si_nodes = Bdd.size m si }
    end
    else
      match Kpt_obs.time "iterate" (fun () -> Kbp.iterate kbp) with
      | Kbp.Converged { si; steps } ->
          Kbp_converged { steps; states = Space.count_states_of sp si }
      | Kbp.Diverged { orbit; _ } -> Kbp_cycle { period = List.length orbit }
      | Kbp.Budget_exhausted { reason; _ } ->
          (* [iterate] lets an ambient-budget exhaustion propagate; keep
             the match total anyway. *)
          raise (Budget.Exhausted reason)
  in
  (* snapshot strictly after the workload (field evaluation order is
     unspecified, so bind explicitly) *)
  let bdd = Bdd.stats m in
  let counters = Kpt_obs.counters () in
  let spans = Kpt_obs.spans () in
  {
    file;
    variables = List.length (Space.vars sp);
    statements = List.length (Kbp.kstmts kbp);
    state_space = Space.state_count_exact sp;
    outcome;
    bdd;
    counters;
    spans;
  }

let counter_value t name = match List.assoc_opt name t.counters with Some v -> v | None -> 0

let hit_rate t =
  let hits = counter_value t "bdd.op_cache.hits" in
  let misses = counter_value t "bdd.op_cache.misses" in
  if hits + misses = 0 then 0.0 else float_of_int hits /. float_of_int (hits + misses)

let kind t = match t.outcome with Standard _ -> "standard" | _ -> "kbp"

let pp fmt t =
  Format.fprintf fmt "@[<v>%s@," t.file;
  Format.fprintf fmt "  program        : %s, %d variable(s), %d statement(s)@." (kind t)
    t.variables t.statements;
  Format.fprintf fmt "  state space    : %a states@." Bigcount.pp t.state_space;
  (match t.outcome with
  | Standard { reachable; si_nodes } ->
      Format.fprintf fmt "  reachable      : %d states (SI: %d BDD nodes, %d sst iterations)@."
        reachable si_nodes
        (counter_value t "sst.iterations")
  | Kbp_converged { steps; states } ->
      Format.fprintf fmt "  Ĝ-iteration    : converged in %d step(s) to %d state(s)@." steps
        states
  | Kbp_cycle { period } ->
      Format.fprintf fmt "  Ĝ-iteration    : cycles with period %d (no fixpoint reached)@." period);
  Format.fprintf fmt "  op-cache       : %.1f%% hit rate (%d hits / %d misses), %d slots@."
    (100.0 *. hit_rate t)
    (counter_value t "bdd.op_cache.hits")
    (counter_value t "bdd.op_cache.misses")
    t.bdd.Bdd.cache_slots;
  Format.fprintf fmt
    "  unique table   : %d nodes created (peak), %d live, %d slots at %.0f%% load, %d spilled@."
    t.bdd.Bdd.nodes_created t.bdd.Bdd.live_nodes t.bdd.Bdd.unique_slots
    (100.0 *. t.bdd.Bdd.unique_load)
    t.bdd.Bdd.spill_nodes;
  Format.fprintf fmt "  counters:@.";
  List.iter
    (fun (name, v) -> if v <> 0 then Format.fprintf fmt "    %-32s %d@." name v)
    t.counters;
  Format.fprintf fmt "  timings:@.";
  List.iter
    (fun (name, ns, calls) ->
      Format.fprintf fmt "    %-32s %8.3f ms  (%d call%s)@." name
        (Int64.to_float ns /. 1e6)
        calls
        (if calls = 1 then "" else "s"))
    t.spans;
  Format.fprintf fmt "@]"

(* Renders with the same escaping discipline as the bench harness. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ?(timings = true) t =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "{\n";
  pf "  \"file\": \"%s\",\n" (json_escape t.file);
  pf "  \"kind\": \"%s\",\n" (kind t);
  pf "  \"variables\": %d,\n" t.variables;
  pf "  \"statements\": %d,\n" t.statements;
  pf "  \"state_space\": %s,\n" (Bigcount.to_string t.state_space);
  (match t.outcome with
  | Standard { reachable; si_nodes } ->
      pf "  \"reachable\": %d,\n" reachable;
      pf "  \"si_nodes\": %d,\n" si_nodes;
      pf "  \"sst_iterations\": %d,\n" (counter_value t "sst.iterations")
  | Kbp_converged { steps; states } ->
      pf "  \"kbp_fixpoint_steps\": %d,\n" steps;
      pf "  \"solution_states\": %d,\n" states
  | Kbp_cycle { period } -> pf "  \"kbp_cycle_period\": %d,\n" period);
  pf "  \"op_cache_hit_rate\": %.4f,\n" (hit_rate t);
  pf "  \"peak_nodes\": %d,\n" t.bdd.Bdd.nodes_created;
  pf "  \"bdd\": { \"nodes_created\": %d, \"live_nodes\": %d, \"unique_slots\": %d, \
      \"unique_load\": %.4f, \"spill_nodes\": %d, \"cache_slots\": %d },\n"
    t.bdd.Bdd.nodes_created t.bdd.Bdd.live_nodes t.bdd.Bdd.unique_slots t.bdd.Bdd.unique_load
    t.bdd.Bdd.spill_nodes t.bdd.Bdd.cache_slots;
  pf "  \"counters\": {\n";
  List.iteri
    (fun i (name, v) ->
      pf "    \"%s\": %d%s\n" (json_escape name) v
        (if i = List.length t.counters - 1 then "" else ","))
    t.counters;
  if timings then begin
    pf "  },\n  \"timings_ns\": {\n";
    List.iteri
      (fun i (name, ns, _) ->
        pf "    \"%s\": %Ld%s\n" (json_escape name) ns
          (if i = List.length t.spans - 1 then "" else ","))
      t.spans;
    pf "  }\n"
  end
  else pf "  }\n";
  pf "}\n";
  Buffer.contents b
