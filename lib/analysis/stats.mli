(** The collector behind [kpt stats]: run the canonical solving workload
    of a loaded [.unity] file with the observability counters scoped to
    it, and render the resulting engine profile.

    The workload is the one the other file commands perform: a standard
    program gets its reachable-state fixpoint ([SI], eqs. 1-5); a
    knowledge-based protocol gets the chaotic Ĝ-iteration (eq. 25).
    {!collect} resets the [Kpt_obs] counters and spans first, so the
    snapshot covers exactly this workload (parsing/elaboration happen
    before and are excluded). *)

open Kpt_predicate
open Kpt_core

type outcome =
  | Standard of { reachable : int; si_nodes : int }
      (** reachable states and BDD size of the [SI] predicate *)
  | Kbp_converged of { steps : int; states : int }
      (** chaotic iteration converged: fixpoint depth and solution size *)
  | Kbp_cycle of { period : int }  (** chaotic iteration entered an orbit *)

type t = {
  file : string;
  variables : int;
  statements : int;
  state_space : Bigcount.t;  (** exact — no float rounding at any size *)
  outcome : outcome;
  bdd : Bdd.stats;  (** the space's manager tables after the workload *)
  counters : (string * int) list;  (** full [Kpt_obs] snapshot, name-sorted *)
  spans : (string * int64 * int) list;  (** (name, total ns, calls) *)
}

val collect : file:string -> Space.t * Kbp.t -> t
(** Run the workload on a loaded file and snapshot the engine.  May raise
    whatever the underlying solvers raise (e.g. [Program.Ill_formed]). *)

val hit_rate : t -> float
(** Op-cache hit rate over the workload, in [0, 1] (0 when idle). *)

val pp : Format.formatter -> t -> unit
(** Human-readable profile: headline metrics, the counter table, and the
    span timings. *)

val to_json : ?timings:bool -> t -> string
(** Machine-readable profile.  [~timings:false] (default [true]) omits
    the [timings_ns] section — everything else is a deterministic
    function of the input file, which is what the golden test pins. *)

val json_escape : string -> string
(** The string-escaping discipline of {!to_json}, shared with the other
    JSON emitters ({!Check}, the bench harness). *)
