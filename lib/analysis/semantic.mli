(** The semantic lint tier ([kpt lint --semantic]): KPT1xx passes that
    run the verification engine itself — reachability fixpoints (eqs.
    3-5), the Ĝ-iteration (eq. 25) and [wcyl] (eq. 6) — under a small
    deterministic budget, so the linter sees what no syntactic pass can.

    Codes (catalogued with equation provenance in DESIGN.md):
    - [KPT100] (info): semantic passes skipped — analysis budget
      exhausted, or the Ĝ-iteration cycles;
    - [KPT101] (warning): statement never enabled in any reachable state
      (guard ∧ SI ≡ false, guard satisfiable on the domain);
    - [KPT102] (warning): guard unsatisfiable on the whole domain;
    - [KPT103] (error): unsatisfiable initial condition (emitted by the
      {!Lint} driver from the elaboration error);
    - [KPT104] (info): reachable states enabling no statement (UNITY
      termination, §5) — info, because protocols legitimately terminate;
    - [KPT105] (info): a single-agent knowledge guard is locally
      implementable; the message carries the concrete local predicate
      over the agent's variables, computed via [wcyl] — the paper's
      Figure 3→4 derivation;
    - [KPT106] (info): a declared property is invariant but not
      inductive; the largest inductive strengthening is suggested.

    Every message renders symbolic counts and declaration-order
    enumerations only, so output is identical across pool sizes and
    reorder modes. *)

open Kpt_predicate
open Kpt_unity
open Kpt_core

val analyse :
  ?file:string -> ?budget:Budget.limits -> Space.t * Kbp.t -> Diagnostic.t list
(** Run every applicable semantic pass on a loaded spec, under [budget]
    (default {!Budget.analysis_default}).  Never raises: budget
    exhaustion degrades to a [KPT100] info.  Results are sorted with
    {!Diagnostic.compare}. *)

val analyse_program : ?file:string -> Program.t -> Diagnostic.t list
(** KPT101/102/104 on a standard program.  Runs under the ambient engine
    budget, if any — arm one (or use {!analyse}) to bound it. *)

val invariant_weakness :
  ?file:string -> ?label:string -> Program.t -> Bdd.t -> (Diagnostic.t * Bdd.t) option
(** [KPT106]: if the property is an invariant but not inductive (not
    stable), return the diagnostic and the largest inductive subset of
    the property — a strengthening candidate that still contains SI.
    [None] when the property is not invariant, or already inductive. *)

val local_guard : Kbp.t -> si:Bdd.t -> Kbp.kstmt -> (string * Bdd.t) option
(** The [KPT105] computation, exposed for tests and the Figure 3→4
    workflow: for a statement whose guard mentions exactly one process
    [i], the weakest vars_i-local predicate
    [ℓ = wcyl.varsᵢ.(SI ⇒ guard)] — returned (with the process name)
    iff it covers the guard within SI ([SI ∧ ℓ ≡ SI ∧ guard]), i.e. iff
    substituting ℓ for the knowledge guard leaves the protocol's
    behaviour unchanged. *)

val render_local : Space.t -> ?care:Bdd.t -> Bdd.t -> string
(** Render a local predicate as a small DNF over its support, in
    variable declaration order (booleans as [v]/[~v], naturals and enums
    as [v = k]).  States outside [care] (default: all) are don't-cares
    used to widen cubes, so the rendered predicate [r] satisfies
    [r ∧ care ≡ pred ∧ care]; capped — very wide predicates render as an
    over-variables note.  Independent of the manager's current bit
    order. *)
