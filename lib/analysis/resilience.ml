open Kpt_unity
open Kpt_protocols
module Matrix = Kpt_fault.Matrix
module Model = Kpt_fault.Model

(* The bundled-protocol subjects of the resilience matrix: each builder
   re-built under every fault model, its §6 properties re-verified per
   cell.  Sizes are the smallest honest instances (n = 2, a = 2 — "the
   receiver must learn something it does not already know"), so the
   whole matrix stays interactive. *)

let params = { Seqtrans.n = 2; a = 2 }

let forall n f = List.for_all f (List.init n Fun.id)
let forall2 n a f = forall n (fun k -> forall a (fun alpha -> f k alpha))

(* Transmit carries the paper's full obligation set: the spec (34)-(35),
   the ack invariant (54), the knowledge discharge obligations (61)-(62)
   — the proposed knowledge values of (50)-(51) must be sound — and
   their stability (55)-(56).  The discharge rows are where
   ⊥-detectability earns its keep: an undetectably corrupted register
   satisfies the {e proposed} K_R value while falsifying the fact. *)
let transmit =
  let { Seqtrans.n; a } = params in
  {
    Matrix.subject = "transmit";
    build =
      (fun fault ->
        let st = Seqtrans.standard ~fault params in
        let prog = st.Seqtrans.sprog in
        let inv p = Program.invariant prog p in
        [
          { Matrix.prop = "safety (34)"; check = (fun () -> inv (Seqtrans.spec_safety st)) };
          {
            Matrix.prop = "liveness (35)";
            check = (fun () -> forall n (fun k -> Seqtrans.spec_liveness_holds st ~k));
          };
          {
            Matrix.prop = "ack invariant (54)";
            check = (fun () -> forall (n + 1) (fun k -> inv (Seqtrans.inv54 st ~k)));
          };
          {
            Matrix.prop = "K_R discharge (61)";
            check = (fun () -> forall2 n a (fun k alpha -> inv (Seqtrans.inv61 st ~k ~alpha)));
          };
          {
            Matrix.prop = "K_S K_R discharge (62)";
            check = (fun () -> forall n (fun k -> inv (Seqtrans.inv62 st ~k)));
          };
          {
            Matrix.prop = "stability (55)";
            check = (fun () -> forall n (fun k -> Seqtrans.stable55_holds st ~k));
          };
          {
            Matrix.prop = "stability (56)";
            check =
              (fun () -> forall2 n a (fun k alpha -> Seqtrans.stable56_holds st ~k ~alpha));
          };
        ])
  }

(* The other builders carry their spec pair. *)
let spec_pair ~safety ~liveness prog =
  [
    { Matrix.prop = "safety (34)"; check = (fun () -> Program.invariant prog safety) };
    {
      Matrix.prop = "liveness (35)";
      check = (fun () -> forall params.Seqtrans.n (fun k -> liveness ~k));
    };
  ]

let abp =
  {
    Matrix.subject = "abp";
    build =
      (fun fault ->
        let t = Abp.make ~fault params in
        spec_pair ~safety:(Abp.safety t) ~liveness:(Abp.liveness_holds t) t.Abp.prog);
  }

let stenning =
  {
    Matrix.subject = "stenning";
    build =
      (fun fault ->
        let t = Stenning.make ~fault params in
        spec_pair ~safety:(Stenning.safety t) ~liveness:(Stenning.liveness_holds t)
          t.Stenning.prog);
  }

let window =
  {
    Matrix.subject = "window";
    build =
      (fun fault ->
        let t = Window.make ~fault ~window:2 params in
        spec_pair ~safety:(Window.safety t) ~liveness:(Window.liveness_holds t)
          t.Window.prog);
  }

let subjects = [ transmit; abp; stenning; window ]

let run ?budget ?faults () = Matrix.run ?budget ?faults subjects
