(** Cone-of-influence slicing as a model reduction ([kpt slice],
    [kpt check/solve/verify --slice]).

    [program ~wrt:p] seeds the cone with [p]'s support and closes it
    under {!Rw.program_cone}; statements writing no cone variable are
    dropped.  For a standard program this is exactly verdict-preserving:
    invariant / stable / leads-to verdicts over predicates supported by
    the cone coincide on the slice and the full program (kept statements
    read only cone variables, dropped statements never write one, so the
    two programs' runs have identical cone projections).

    Knowledge guards denote relative to the whole protocol's SI (eq. 25),
    so {!kbp} is conservative: the seed additionally includes the initial
    condition's support, every guard's reads (operator bodies included)
    and the variable set of every [K]-mentioned process — inside that
    cone the [wcyl] quantifications of eq. 13 cannot distinguish the
    slice from the full protocol.  Without [~wrt] the same conservative
    seed is used (for both forms), so a property-less slice only drops
    write-only sinks and is the identity on realistic specs. *)

open Kpt_predicate
open Kpt_unity
open Kpt_core

type info = {
  cone : Rw.V.t;  (** variable indices spanning the cone of influence *)
  kept : string list;  (** statement names, in program order *)
  dropped : string list;
}

val is_identity : info -> bool
(** No statement was dropped. *)

val program : ?name:string -> ?wrt:Bdd.t list -> Program.t -> Program.t * info
(** Slice a standard program with respect to the given properties; the
    seed is the {e union} of their supports (a conjunction could
    collapse under BDD simplification and lose cone variables).  A slice
    that would drop {e every} statement degenerates to the identity
    (programs must stay non-empty; a property influenced by nothing is
    preserved by any slice). *)

val kbp : ?name:string -> ?wrt:Bdd.t list -> Kbp.t -> Kbp.t * info
(** Slice a knowledge-based protocol (conservatively, see above).
    Standard programs wrapped in [Kbp.t] get the aggressive property
    seed. *)

val pp_info : Space.t -> Format.formatter -> info -> unit
(** Cone variables and kept/dropped statement names, for [kpt slice]. *)
