(** Structured lint findings.

    Every static-analysis pass reports [t] values: a stable [KPT0xx] code,
    a severity, an optional source position (file + {!Kpt_syntax.Loc.span})
    and a message, with an optional fix hint.  The CLI renders them as
    [file:line:col: severity[KPTnnn]: message] followed by a source
    excerpt with a caret; the exit-code policy lives in {!exit_code}.

    The code space (catalogued with paper provenance in DESIGN.md):
    - [KPT001]-[KPT003]: lexical / syntax / elaboration errors;
    - [KPT01x]: knowledge checks (eq. 13 locality, eq. 25 / Figures 1-2
      polarity);
    - [KPT02x]: vacuity and hygiene;
    - [KPT03x]: interference. *)

open Kpt_syntax

type severity = Error | Warning | Info

type t = {
  code : string;  (** stable "KPTnnn" identifier *)
  severity : severity;
  file : string option;
  span : Loc.span option;
  message : string;
  hint : string option;  (** an optional "fix: …" suggestion *)
}

val error : ?file:string -> ?span:Loc.span -> ?hint:string -> code:string -> string -> t
val warning : ?file:string -> ?span:Loc.span -> ?hint:string -> code:string -> string -> t
val info : ?file:string -> ?span:Loc.span -> ?hint:string -> code:string -> string -> t

val with_file : string -> t -> t
(** Attach a file name (kept if already present). *)

val severity_label : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val compare : t -> t -> int
(** Document order: by position, then severity (errors first), then code. *)

val is_error : t -> bool

val of_syntax_exn : ?file:string -> exn -> t option
(** Map {!Token.Lex_error} / {!Parser.Parse_error} /
    {!Elaborate.Elab_error} to [KPT001]/[KPT002]/[KPT003] diagnostics;
    [None] for any other exception. *)

val pp : Format.formatter -> t -> unit
(** One line: [file:line:col: severity[KPTnnn]: message]. *)

val pp_excerpt : src:string -> Format.formatter -> t -> unit
(** {!pp}, followed by the offending source line with a caret under the
    span's column and the hint (if any). *)

val summary : t list -> string
(** ["2 errors, 1 warning"] — empty string for no findings. *)

val exit_code : ?warn_error:bool -> t list -> int
(** [1] if any error (or, with [~warn_error:true], any warning) is
    present; [0] otherwise.  Infos never affect the exit code. *)
