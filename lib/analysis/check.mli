(** The batch driver behind [kpt check FILE...]: lint + elaborate +
    solve + stats for every file of a corpus, in parallel, with one
    summary line per file.

    {b Determinism.}  Output (text and JSON) is a function of the input
    files alone: reports are computed on worker domains but rendered on
    the calling domain in input order, each task runs under a fresh
    {!Kpt_predicate.Engine.t} (so even counter snapshots are
    pool-size-independent), and nothing the renderer prints depends on
    [jobs].  [kpt check -j 4] is byte-identical to [-j 1].

    {b Isolation.}  A file that fails to lex, parse or elaborate — or
    whose solver raises — yields a failing report of its own; its
    siblings are computed and rendered normally. *)

type report = {
  file : string;
  diags : Diagnostic.t list;
      (** lint findings, including syntax/elaboration errors *)
  stats : Stats.t option;  (** [None] when the file does not elaborate *)
}

val check_source : ?slice:bool -> file:string -> string -> report
(** Check one file's content (lint, then — if it elaborates — the
    {!Stats.collect} solving workload).  [~slice:true] reduces the
    protocol to its cone of influence ({!Slice.kbp}, conservative seed)
    before solving; the verdict is preserved.  Does not catch non-syntax
    exceptions; the batch driver does. *)

val failed : report -> bool
(** Whether the report carries at least one error-severity finding. *)

val reports :
  ?jobs:int ->
  ?budget:Kpt_predicate.Budget.limits ->
  ?slice:bool ->
  (string * string) list ->
  report list
(** [(file, source)] pairs in, reports out, index-aligned.  [jobs]
    defaults to {!Kpt_par.recommended_jobs}.  [budget] is armed afresh
    per file ({!Kpt_par.try_map}'s [task_budget]); a file that exhausts
    it degrades to a [KPT041] error report instead of hanging the
    batch. *)

val render_text : Format.formatter -> report list -> unit
val render_json : Format.formatter -> report list -> unit

val run_sources :
  ?jobs:int ->
  ?budget:Kpt_predicate.Budget.limits ->
  ?slice:bool ->
  ?warn_error:bool ->
  ?quiet:bool ->
  ?json:bool ->
  Format.formatter ->
  (string * string) list ->
  int
(** Check, render (unless [quiet]), and compute the exit code with
    {!Lint.run_sources} semantics: [1] iff any error (or any warning
    under [warn_error]); the empty corpus is a no-op success.  A file
    whose per-task [budget] ran out ([KPT041]) upgrades the exit code to
    [3] — the CLI's documented resource-exhaustion code. *)
