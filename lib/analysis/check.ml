open Kpt_syntax
module D = Diagnostic

(* The batch driver behind [kpt check FILE...]: per file, run the full
   front-to-back pipeline — lint, elaborate, solve (SI for standard
   programs, the Ĝ-iteration for KBPs) and a stats snapshot — and render
   one summary line.  Files are independent, so the pool farms them out;
   everything below is written for determinism across pool sizes:

   - [check_source] is pure in the file's content (no shared tables: the
     space owns its BDD manager, and the pool runs every task under a
     fresh [Engine.t], so even the counter snapshot inside [Stats.t] is
     the same at [-j 1] and [-j 8]);
   - workers only {e compute} reports; all rendering happens on the
     calling domain, in input order, and no output mentions the pool
     size.  Hence `kpt check -j 4` is byte-identical to `-j 1`. *)

type report = {
  file : string;
  diags : D.t list;  (* lint findings, including syntax errors *)
  stats : Stats.t option;  (* [None] when the file does not elaborate *)
}

let check_source ?(slice = false) ~file src =
  let diags = Lint.lint_source ~file src in
  match Elaborate.program (Parser.program_of_string src) with
  | sp, kbp ->
      (* [--slice]: reduce to the cone of influence before solving.  The
         property-less KBP slice is conservative (see {!Slice}), so the
         verdict — and on identity slices the whole report — is the same
         as the unsliced run's. *)
      let kbp = if slice then fst (Slice.kbp kbp) else kbp in
      { file; diags; stats = Some (Stats.collect ~file (sp, kbp)) }
  | exception (Token.Lex_error _ | Parser.Parse_error _ | Elaborate.Elab_error _)
  | exception Invalid_argument _ ->
      (* already reported among [diags] by [Lint.lint_source] *)
      { file; diags; stats = None }

(* Safety net for anything a task throws outside [check_source]'s
   anticipated failures (e.g. [Failure] out of a solver): the file gets
   an error report of its own and its siblings are untouched.  Budget
   exhaustion gets its own code (KPT041) so the caller can map it to the
   documented resource exit code. *)
let report_of_exn ~file exn =
  let d =
    match D.of_syntax_exn ~file exn with
    | Some d -> d
    | None -> (
        match exn with
        | Kpt_predicate.Budget.Exhausted reason ->
            D.error ~file ~code:"KPT041"
              ~hint:
                "raise --timeout/--fuel, or check this file on its own to see how far \
                 the solver gets"
              (Printf.sprintf "resource budget exhausted: %s"
                 (Kpt_predicate.Budget.reason_to_string reason))
        | _ -> D.error ~file ~code:"KPT003" (Printexc.to_string exn))
  in
  { file; diags = [ d ]; stats = None }

let failed r = List.exists D.is_error r.diags

let budget_exhausted r =
  List.exists (fun (d : D.t) -> d.D.code = "KPT041") r.diags

(* ---- rendering -------------------------------------------------------------- *)

let outcome_blurb (t : Stats.t) =
  match t.Stats.outcome with
  | Stats.Standard { reachable; si_nodes = _ } ->
      Printf.sprintf "standard, %d var(s), %d reachable state(s)" t.Stats.variables
        reachable
  | Stats.Kbp_converged { steps; states } ->
      Printf.sprintf "kbp, %d var(s), converged in %d step(s) to %d state(s)"
        t.Stats.variables steps states
  | Stats.Kbp_cycle { period } ->
      Printf.sprintf "kbp, %d var(s), Ĝ cycles with period %d (not well-posed)"
        t.Stats.variables period

let findings_blurb diags =
  match D.summary diags with "" -> "no findings" | s -> s

let summary_line ppf r =
  let verdict = if failed r then "FAIL" else "ok" in
  match r.stats with
  | Some t ->
      Format.fprintf ppf "%s: %s — %s; %s@." r.file verdict (outcome_blurb t)
        (findings_blurb r.diags)
  | None when budget_exhausted r ->
      Format.fprintf ppf "%s: %s — budget exhausted; %s@." r.file verdict
        (findings_blurb r.diags)
  | None ->
      Format.fprintf ppf "%s: %s — does not elaborate; %s@." r.file verdict
        (findings_blurb r.diags)

let render_text ppf reports =
  List.iter (summary_line ppf) reports;
  let all = List.concat_map (fun r -> r.diags) reports in
  match (all, reports) with
  | _, [] -> Format.fprintf ppf "no files to check@."
  | [], _ -> Format.fprintf ppf "%d file(s): no findings@." (List.length reports)
  | ds, _ -> Format.fprintf ppf "%d file(s): %s@." (List.length reports) (D.summary ds)

(* JSON mirrors [Stats.to_json] conventions (and reuses it per file);
   timings are excluded so the output is deterministic. *)
let indent prefix s =
  String.split_on_char '\n' s
  |> List.map (fun l -> if l = "" then l else prefix ^ l)
  |> String.concat "\n"

let severity_counts diags =
  List.fold_left
    (fun (e, w, i) (d : D.t) ->
      match d.D.severity with
      | D.Error -> (e + 1, w, i)
      | D.Warning -> (e, w + 1, i)
      | D.Info -> (e, w, i + 1))
    (0, 0, 0) diags

let report_json r =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let e, w, i = severity_counts r.diags in
  pf "  {\n";
  pf "    \"file\": \"%s\",\n" (Stats.json_escape r.file);
  pf "    \"status\": \"%s\",\n" (if failed r then "fail" else "ok");
  pf "    \"findings\": { \"errors\": %d, \"warnings\": %d, \"infos\": %d },\n" e w i;
  pf "    \"diagnostics\": [";
  List.iteri
    (fun i (d : D.t) ->
      pf "%s\n      { \"code\": \"%s\", \"severity\": \"%s\", \"message\": \"%s\" }"
        (if i = 0 then "" else ",")
        (Stats.json_escape d.D.code)
        (D.severity_label d.D.severity)
        (Stats.json_escape d.D.message))
    r.diags;
  if r.diags <> [] then pf "\n    ";
  pf "],\n";
  (match r.stats with
  | Some t ->
      let s = String.trim (Stats.to_json ~timings:false t) in
      pf "    \"stats\": %s\n" (String.trim (indent "    " s))
  | None -> pf "    \"stats\": null\n");
  pf "  }";
  Buffer.contents b

let render_json ppf reports =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  let all = List.concat_map (fun r -> r.diags) reports in
  let e, w, i = severity_counts all in
  Buffer.add_string b
    (Printf.sprintf
       "  \"files\": %d,\n  \"errors\": %d,\n  \"warnings\": %d,\n  \"infos\": %d,\n"
       (List.length reports) e w i);
  Buffer.add_string b "  \"reports\": [";
  List.iteri
    (fun i r ->
      Buffer.add_string b (if i = 0 then "\n" else ",\n");
      Buffer.add_string b (report_json r))
    reports;
  if reports <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "]\n}\n";
  Format.fprintf ppf "%s" (Buffer.contents b)

(* ---- driver ----------------------------------------------------------------- *)

let reports ?jobs ?budget ?slice sources =
  Kpt_par.try_map ?jobs ?task_budget:budget
    (fun (file, src) -> check_source ?slice ~file src)
    sources
  |> List.map2
       (fun (file, _) -> function Ok r -> r | Error e -> report_of_exn ~file e)
       sources

let run_sources ?jobs ?budget ?slice ?(warn_error = false) ?(quiet = false)
    ?(json = false) ppf sources =
  let rs = reports ?jobs ?budget ?slice sources in
  if not quiet then if json then render_json ppf rs else render_text ppf rs;
  let code = D.exit_code ~warn_error (List.concat_map (fun r -> r.diags) rs) in
  (* budget exhaustion outranks plain findings: exit 3, the documented
     resource code, so scripts can tell "spec is wrong" from "budget was
     too small" *)
  if List.exists budget_exhausted rs then 3 else code
