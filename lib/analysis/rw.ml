open Kpt_syntax
open Kpt_predicate
open Kpt_unity

module S = Set.Make (String)

type kop = {
  agents : string list;
  kspan : Loc.span;
  kreads : S.t;
  negated_reads : S.t;
  negative_position : bool;
}

type stmt_rw = {
  writes : S.t;
  rhs_reads : S.t;
  guard_plain : S.t;
  kops : kop list;
}

(* Polarity of an occurrence: positive, negative, or both (under <=>). *)
type pol = Pos | Neg | Both

let flip = function Pos -> Neg | Neg -> Pos | Both -> Both

(* One walk collects everything a pass could want from a guard: the reads
   outside knowledge operators, and per operator the reads inside it, the
   reads occurring there under negative polarity, and whether the operator
   itself sits in negative position. *)
let analyse_guard ~vars guard =
  let kops = ref [] in
  (* [inside]: when [Some (reads, negs)], we are inside a knowledge
     operator and leaf occurrences accumulate there; otherwise they go to
     the plain guard set. *)
  let plain = ref S.empty in
  let leaf inside _pol name =
    if S.mem name vars then
      match inside with
      | None -> plain := S.add name !plain
      | Some (reads, _) -> reads := S.add name !reads
  in
  let neg_leaf inside pol name =
    if S.mem name vars && pol <> Pos then
      match inside with
      | None -> ()
      | Some (_, negs) -> negs := S.add name !negs
  in
  let rec go inside pol (e : Ast.expr) =
    match e.Ast.expr with
    | Ast.Etrue | Ast.Efalse | Ast.Enum _ -> ()
    | Ast.Eident name ->
        leaf inside pol name;
        neg_leaf inside pol name
    | Ast.Eindex (name, idx) ->
        leaf inside pol name;
        neg_leaf inside pol name;
        (* the index is data, not a monotone boolean position *)
        go inside Both idx
    | Ast.Enot a -> go inside (flip pol) a
    | Ast.Eand (a, b) | Ast.Eor (a, b) ->
        go inside pol a;
        go inside pol b
    | Ast.Eimp (a, b) ->
        go inside (flip pol) a;
        go inside pol b
    | Ast.Eiff (a, b) ->
        go inside Both a;
        go inside Both b
    | Ast.Eeq (a, b) | Ast.Ene (a, b) | Ast.Elt (a, b) | Ast.Ele (a, b)
    | Ast.Egt (a, b) | Ast.Ege (a, b) ->
        (* a comparison's variables occur at the comparison's polarity *)
        go_data inside pol a;
        go_data inside pol b
    | Ast.Eadd (a, b) | Ast.Esub (a, b) ->
        go_data inside pol a;
        go_data inside pol b
    | Ast.Eknow (p, body) -> kop inside pol [ p ] e.Ast.espan body
    | Ast.Egroup (_, ps, body) -> kop inside pol ps e.Ast.espan body
  and go_data inside pol (e : Ast.expr) =
    (* below a comparison: every variable occurrence inherits [pol] *)
    match e.Ast.expr with
    | Ast.Eident name ->
        leaf inside pol name;
        neg_leaf inside pol name
    | Ast.Eindex (name, idx) ->
        leaf inside pol name;
        neg_leaf inside pol name;
        go_data inside Both idx
    | _ -> (
        match e.Ast.expr with
        | Ast.Enot a -> go_data inside (flip pol) a
        | Ast.Eand (a, b) | Ast.Eor (a, b) | Ast.Eimp (a, b) | Ast.Eiff (a, b)
        | Ast.Eeq (a, b) | Ast.Ene (a, b) | Ast.Elt (a, b) | Ast.Ele (a, b)
        | Ast.Egt (a, b) | Ast.Ege (a, b) | Ast.Eadd (a, b) | Ast.Esub (a, b) ->
            go_data inside pol a;
            go_data inside pol b
        | Ast.Eknow (p, body) -> kop inside pol [ p ] e.Ast.espan body
        | Ast.Egroup (_, ps, body) -> kop inside pol ps e.Ast.espan body
        | Ast.Etrue | Ast.Efalse | Ast.Enum _ | Ast.Eident _ | Ast.Eindex _ -> ())
  and kop inside pol agents kspan body =
    let reads = ref S.empty and negs = ref S.empty in
    (* knowledge restarts polarity: K_i(φ)'s dependence on φ is positive *)
    go (Some (reads, negs)) Pos body;
    kops :=
      {
        agents;
        kspan;
        kreads = !reads;
        negated_reads = !negs;
        negative_position = pol <> Pos;
      }
      :: !kops;
    (* the enclosing context still reads whatever the body reads *)
    match inside with
    | None -> ()
    | Some (outer_reads, _) -> outer_reads := S.union !outer_reads !reads
  in
  go None Pos guard;
  (!plain, List.rev !kops)

let reads ~vars e =
  let plain, kops = analyse_guard ~vars e in
  List.fold_left (fun acc k -> S.union acc k.kreads) plain kops

let of_stmt ~vars (s : Ast.stmt) =
  let writes =
    List.fold_left
      (fun acc -> function
        | Ast.Tvar v -> S.add v acc
        | Ast.Tindex (v, _) -> S.add v acc)
      S.empty s.Ast.s_targets
  in
  let index_reads =
    List.fold_left
      (fun acc -> function
        | Ast.Tvar _ -> acc
        | Ast.Tindex (_, idx) -> S.union acc (reads ~vars idx))
      S.empty s.Ast.s_targets
  in
  let rhs_reads =
    List.fold_left (fun acc e -> S.union acc (reads ~vars e)) index_reads s.Ast.s_exprs
  in
  let guard_plain, kops =
    match s.Ast.s_guard with
    | None -> (S.empty, [])
    | Some g -> analyse_guard ~vars g
  in
  { writes; rhs_reads; guard_plain; kops }

let all_reads rw =
  List.fold_left
    (fun acc k -> S.union acc k.kreads)
    (S.union rw.rhs_reads rw.guard_plain)
    rw.kops

let cone stmts targets =
  let rec fix c =
    let c' =
      List.fold_left
        (fun acc (writes, reads) ->
          if S.is_empty (S.inter writes acc) then acc else S.union acc reads)
        c stmts
    in
    if S.equal c c' then c else fix c'
  in
  fix targets

(* ---- semantic granularity ------------------------------------------------ *)

module V = Set.Make (Int)

let var_of_idx sp i = List.find (fun v -> Space.idx v = i) (Space.vars sp)

let of_vars vs = List.fold_left (fun acc v -> V.add (Space.idx v) acc) V.empty vs

let stmt_writes (s : Stmt.t) = of_vars (Stmt.assigned_vars s)

(* BDD bit → program variable, for pre-compiled guard predicates. *)
let vars_of_support sp bits =
  let by_bit = Hashtbl.create 64 in
  List.iter
    (fun v ->
      List.iter (fun b -> Hashtbl.replace by_bit b v) (Space.current_bits v);
      List.iter (fun b -> Hashtbl.replace by_bit b v) (Space.next_bits v))
    (Space.vars sp);
  List.fold_left
    (fun acc b ->
      match Hashtbl.find_opt by_bit b with
      | Some v -> V.add (Space.idx v) acc
      | None -> acc)
    V.empty bits

let stmt_reads sp (s : Stmt.t) =
  let guard_reads =
    match s.Stmt.guard with
    | Stmt.Gexpr e -> of_vars (Expr.vars_of e)
    | Stmt.Gpred p -> vars_of_support sp (Bdd.support (Space.manager sp) p)
  in
  List.fold_left
    (fun acc (_, rhs) -> V.union acc (of_vars (Expr.vars_of rhs)))
    guard_reads s.Stmt.assigns

let close_cone stmts targets =
  let rec fix c =
    let c' =
      List.fold_left
        (fun acc (writes, reads) ->
          if V.is_empty (V.inter writes acc) then acc else V.union acc reads)
        c stmts
    in
    if V.equal c c' then c else fix c'
  in
  fix targets

let program_cone prog targets =
  let sp = Program.space prog in
  close_cone
    (List.map (fun s -> (stmt_writes s, stmt_reads sp s)) (Program.statements prog))
    targets

(* ---- knowledge-based protocols ------------------------------------------- *)

(* Reads of a knowledge guard, operator bodies included: a K body may
   mention anything (that is the point of knowledge), and all of it can
   influence the guard's denotation. *)
let rec kform_reads = function
  | Kpt_core.Kform.Base e -> of_vars (Expr.vars_of e)
  | Kpt_core.Kform.Knot f -> kform_reads f
  | Kpt_core.Kform.Kand (a, b) | Kpt_core.Kform.Kor (a, b)
  | Kpt_core.Kform.Kimp (a, b) ->
      V.union (kform_reads a) (kform_reads b)
  | Kpt_core.Kform.K (_, f)
  | Kpt_core.Kform.Ek (_, f)
  | Kpt_core.Kform.Ck (_, f)
  | Kpt_core.Kform.Dk (_, f) ->
      kform_reads f

let kstmt_writes (s : Kpt_core.Kbp.kstmt) =
  of_vars (List.map fst s.Kpt_core.Kbp.kassigns)

let kstmt_reads (s : Kpt_core.Kbp.kstmt) =
  List.fold_left
    (fun acc (_, rhs) -> V.union acc (of_vars (Expr.vars_of rhs)))
    (kform_reads s.Kpt_core.Kbp.kguard)
    s.Kpt_core.Kbp.kassigns

let kbp_cone k targets =
  close_cone
    (List.map (fun s -> (kstmt_writes s, kstmt_reads s)) (Kpt_core.Kbp.kstmts k))
    targets
