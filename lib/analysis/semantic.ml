open Kpt_predicate
open Kpt_unity
open Kpt_core
module D = Diagnostic
module V = Rw.V

(* The semantic lint tier (KPT1xx): passes that run the verification
   engine itself — reachability fixpoints, the Ĝ-iteration, wcyl — under
   a small deterministic budget ({!Budget.analysis_default}), so the
   linter can see what no syntactic pass can: a guard unsatisfiable in
   reachable states, a reachable deadlock, a knowledge guard that is in
   fact locally implementable (the paper's Figure 3→4 move).

   Code map (catalogued in DESIGN.md):
   - KPT100 info     semantic passes skipped (budget exhausted / Ĝ cycles)
   - KPT101 warning  statement never enabled in a reachable state
   - KPT102 warning  guard unsatisfiable on the whole domain
   - KPT103 error    unsatisfiable initial condition (surfaced by the
                     lint driver from the elaboration error — both
                     program constructors reject such specs outright)
   - KPT104 info     reachable states with no statement enabled
   - KPT105 info     single-agent knowledge guard locally implementable:
                     the concrete local predicate over vars_i via wcyl
                     (eqs. 6, 13)
   - KPT106 info     declared property invariant but not inductive, with
                     the largest inductive strengthening as a candidate

   Determinism: the default budget has no wall-clock component, every
   message renders symbolic counts (never BDD-order-dependent state
   enumerations), and KPT105's disjuncts are enumerated in variable
   declaration order — output is identical across pool sizes and reorder
   modes. *)

let skipped ?file reason =
  D.info ?file ~code:"KPT100"
    ~hint:"raise --fuel/--max-nodes, or run kpt check/solve for the full story"
    (Printf.sprintf "semantic passes skipped: %s" reason)

(* ---- KPT105: local implementability of knowledge guards ------------------- *)

(* Eq. 13 seats [K_i p] inside process i's variables; compiling the whole
   guard [g] at the solved SI and asking wcyl for
   [ℓ = (∀ vars_i-complement :: SI ⇒ g)] yields the weakest vars_i-local
   predicate at most as strong as g within SI.  The guard is locally
   implementable exactly when ℓ covers it there: [SI ∧ ℓ ≡ SI ∧ g] — then
   process i can evaluate ℓ on its own variables instead of the K-guard,
   with the identical solve verdict (the Figure 3→4 derivation). *)
let local_guard kbp ~si (s : Kbp.kstmt) =
  let sp = Kbp.space kbp in
  let m = Space.manager sp in
  let procs = Kbp.processes kbp in
  let find_proc n = List.find_opt (fun p -> Process.name p = n) procs in
  match Kform.processes_of s.Kbp.kguard with
  | [ pname ] when not (Kform.is_standard s.Kbp.kguard) -> (
      match find_proc pname with
      | None -> None
      | Some proc ->
          let lookup n =
            match find_proc n with Some p -> p | None -> raise Not_found
          in
          let g = Kform.compile sp ~lookup ~si s.Kbp.kguard in
          let ell = Wcyl.wcyl sp (Process.vars proc) (Bdd.imp m si g) in
          if Bdd.equal (Bdd.and_ m si ell) (Bdd.and_ m si g) then
            Some (pname, ell)
          else None)
  | _ -> None

(* Render a vars-local predicate as a small DNF over its own support, in
   variable declaration order: booleans as [v]/[~v], bounded naturals and
   enums as [v = k].  States outside [care] (the solved SI, when given)
   are don't-cares: each minterm of [pred] that intersects [care] is
   greedily widened to a cube that stays inside [pred] wherever [care]
   holds, and a first-uncovered-minterm greedy cover keeps only the cubes
   needed — so the rendered predicate [r] satisfies [r ∧ care ≡ pred ∧
   care] while being far shorter than the raw minterm sum.  The
   enumeration is over program variables (not BDD bits), so the text is
   independent of the variable order the manager happens to have sifted
   to. *)
let render_local sp ?care pred =
  let m = Space.manager sp in
  let care = match care with Some c -> c | None -> Bdd.tru m in
  if Bdd.is_true pred then "true"
  else if Bdd.is_false pred then "false"
  else begin
    let support = Rw.vars_of_support sp (Bdd.support m pred) in
    let vars =
      List.filter (fun v -> V.mem (Space.idx v) support) (Space.vars sp)
    in
    let combos = List.fold_left (fun acc v -> acc * Space.card v) 1 vars in
    if combos > 256 then
      Printf.sprintf "(a predicate over %s)"
        (String.concat ", " (List.map Space.name vars))
    else begin
      let atom v k =
        match (Space.card v, k) with
        | 2, 1 when Space.value_name v 1 = "true" -> Space.name v
        | 2, 0 when Space.value_name v 0 = "false" -> "~" ^ Space.name v
        | _ -> Printf.sprintf "%s = %s" (Space.name v) (Space.value_name v k)
      in
      let atom_pred v k =
        match (Space.card v, Space.value_name v k) with
        | 2, "true" -> Expr.compile_bool sp (Expr.Var v)
        | 2, "false" -> Expr.compile_bool sp (Expr.Not (Expr.Var v))
        | _ -> Expr.compile_bool sp (Expr.Eq (Expr.Var v, Expr.Cint k))
      in
      let cube_pred cube =
        List.fold_left
          (fun acc (v, k) -> Bdd.and_ m acc (atom_pred v k))
          (Bdd.tru m) cube
      in
      (* minterms of [pred] that intersect [care], in declaration order;
         a full assignment over the support either implies [pred] or its
         negation, so non-emptiness of the conjunction is membership *)
      let minterms = ref [] in
      let rec go vs acc_pred acc =
        match vs with
        | [] ->
            if not (Bdd.is_false (Bdd.and_ m acc_pred care)) then
              minterms := (List.rev acc, acc_pred) :: !minterms
        | v :: rest ->
            for k = 0 to Space.card v - 1 do
              let p = Bdd.and_ m acc_pred (atom_pred v k) in
              if not (Bdd.is_false (Bdd.and_ m pred p)) then
                go rest p ((v, k) :: acc)
            done
      in
      go vars (Bdd.tru m) [];
      let minterms = List.rev !minterms in
      (* widen: drop literals (declaration order) while the cube still
         implies [pred] wherever [care] holds *)
      let expand cube =
        List.fold_left
          (fun kept (v, _) ->
            let without =
              List.filter (fun (v', _) -> Space.idx v' <> Space.idx v) kept
            in
            if Bdd.implies m (Bdd.and_ m (cube_pred without) care) pred then
              without
            else kept)
          cube cube
      in
      let chosen = ref [] in
      List.iter
        (fun (cube, cp) ->
          if not (List.exists (fun (_, chp) -> Bdd.implies m cp chp) !chosen)
          then begin
            let e = expand cube in
            chosen := (e, cube_pred e) :: !chosen
          end)
        minterms;
      match List.rev !chosen with
      | [] -> "false"
      | [ ([], _) ] -> "true"
      | cs ->
          String.concat " \\/ "
            (List.map
               (fun (atoms, _) ->
                 String.concat " /\\ " (List.map (fun (v, k) -> atom v k) atoms))
               cs)
    end
  end

(* ---- program-level passes (KPT101/102/104) -------------------------------- *)

(* [stmts] are (label, guard predicate) pairs — concrete statements of a
   standard program, or a KBP's statements instantiated at the solved
   SI (whose knames the labels preserve). *)
let program_passes ?file sp ~stmts ~si =
  let m = Space.manager sp in
  let dom = Space.domain sp in
  let ds = ref [] in
  let emit d = ds := d :: !ds in
  List.iter
    (fun (label, g) ->
      Engine.checkpoint ~fuel:1 ();
      let g = Bdd.and_ m g dom in
      if Bdd.is_false g then
        emit
          (D.warning ?file ~code:"KPT102"
             ~hint:"delete the statement, or repair the guard"
             (Printf.sprintf
                "guard of %s is unsatisfiable: no type-correct state at all \
                 satisfies it, reachable or not"
                label))
      else if Bdd.is_false (Bdd.and_ m g si) then
        emit
          (D.warning ?file ~code:"KPT101"
             ~hint:"the statement is dead code under this init; delete it or widen init"
             (Printf.sprintf
                "%s is never enabled in any reachable state (guard ∧ SI ≡ false, \
                 eqs. 3-5), though its guard is satisfiable on the domain"
                label)))
    stmts;
  let enabled = Bdd.disj m (List.map (fun (_, g) -> Bdd.and_ m g dom) stmts) in
  let stuck = Bdd.and_ m si (Bdd.not_ m enabled) in
  if not (Bdd.is_false stuck) then
    emit
      (D.info ?file ~code:"KPT104"
         (Printf.sprintf
            "%s reachable state(s) enable no statement at all: execution can \
             only stutter there (UNITY termination, §5)"
            (Bigcount.to_string (Space.count_states_exact sp stuck))));
  List.rev !ds

let analyse_program ?file prog =
  let sp = Program.space prog in
  let stmts =
    List.map
      (fun s -> (Stmt.name s, Stmt.guard_pred sp s))
      (Program.statements prog)
  in
  program_passes ?file sp ~stmts ~si:(Program.si prog)

(* ---- KPT106: invariant weakness ------------------------------------------- *)

(* The largest inductive subset of [p]: the gfp of [X ↦ X ∧ ⋀s wp.s.X]
   below [p ∧ domain].  If [p] is an invariant but not stable, the gfp
   still contains SI (SI is inductive and within p), so it is a genuine
   strengthening candidate the user can declare instead. *)
let inductive_core prog p =
  let sp = Program.space prog in
  let m = Space.manager sp in
  let rec go x =
    Engine.checkpoint ~fuel:1 ();
    let x' =
      List.fold_left
        (fun acc s -> Bdd.and_ m acc (Stmt.wp sp s x))
        x (Program.statements prog)
    in
    if Bdd.equal x x' then x else go x'
  in
  go (Bdd.and_ m p (Space.domain sp))

let invariant_weakness ?file ?(label = "the property") prog p =
  if (not (Program.invariant prog p)) || Program.stable prog p then None
  else begin
    let core = inductive_core prog p in
    let sp = Program.space prog in
    let d =
      D.info ?file ~code:"KPT106"
        ~hint:"declare the strengthened candidate to get an inductive proof"
        (Printf.sprintf
           "%s is invariant but not inductive (some statement can falsify it \
            from a non-reachable state); its largest inductive strengthening \
            holds on %s of %s state(s)"
           label
           (Bigcount.to_string (Space.count_states_exact sp core))
           (Bigcount.to_string (Space.count_states_exact sp p)))
    in
    Some (d, core)
  end

(* ---- the KBP entry point --------------------------------------------------- *)

let analyse_kbp ?file kbp =
  let sp = Kbp.space kbp in
  if Kbp.is_standard kbp then analyse_program ?file (Kbp.to_standard_program kbp)
  else
    match Kbp.iterate kbp with
    | Kbp.Converged { si; steps = _ } ->
        let concrete =
          match Kbp.instantiate kbp ~si with
          | prog ->
              let stmts =
                List.map
                  (fun s -> (Stmt.name s, Stmt.guard_pred sp s))
                  (Program.statements prog)
              in
              program_passes ?file sp ~stmts ~si
          | exception Program.Ill_formed msg ->
              [ skipped ?file (Printf.sprintf "instantiation at SI is ill-formed (%s)" msg) ]
        in
        let locals =
          List.filter_map
            (fun (s : Kbp.kstmt) ->
              Engine.checkpoint ~fuel:1 ();
              match local_guard kbp ~si s with
              | Some (pname, ell) ->
                  Some
                    (D.info ?file ~code:"KPT105"
                       ~hint:
                         (Printf.sprintf
                            "substituting the local predicate for the guard of %s \
                             leaves the solve verdict unchanged (Figure 3→4)"
                            s.Kbp.kname)
                       (Printf.sprintf
                          "knowledge guard of %s is locally implementable by %s: \
                           within SI it equals %s (wcyl over %s's variables, \
                           eqs. 6, 13)"
                          s.Kbp.kname pname (render_local sp ~care:si ell) pname))
              | None -> None)
            (Kbp.kstmts kbp)
        in
        concrete @ locals
    | Kbp.Diverged { orbit; steps = _ } ->
        (* no SI to be reachability-aware against; still flag guards that
           are unsatisfiable on the whole domain (standard guards only —
           a K-guard's denotation needs an SI) *)
        let m = Space.manager sp in
        let dom = Space.domain sp in
        let dead =
          List.filter_map
            (fun (s : Kbp.kstmt) ->
              if Kform.is_standard s.Kbp.kguard then begin
                let lookup _ = raise Not_found in
                let g = Kform.compile sp ~lookup ~si:dom s.Kbp.kguard in
                if Bdd.is_false (Bdd.and_ m g dom) then
                  Some
                    (D.warning ?file ~code:"KPT102"
                       ~hint:"delete the statement, or repair the guard"
                       (Printf.sprintf
                          "guard of %s is unsatisfiable: no type-correct state \
                           at all satisfies it, reachable or not"
                          s.Kbp.kname))
                else None
              end
              else None)
            (Kbp.kstmts kbp)
        in
        dead
        @ [
            skipped ?file
              (Printf.sprintf
                 "Ĝ-iteration cycles with period %d (no solution to analyse, \
                  eq. 25)"
                 (List.length orbit));
          ]
    | Kbp.Budget_exhausted { reason; _ } ->
        (* [iterate] lets exhaustion escape as an exception, so this arm
           is unreachable — kept for totality *)
        [
          skipped ?file
            (Printf.sprintf "analysis budget exhausted (%s)"
               (Budget.reason_to_string reason));
        ]

let analyse ?file ?(budget = Budget.analysis_default) (_sp, kbp) =
  let partial = ref [] in
  match
    Engine.with_budget budget (fun () ->
        let ds = analyse_kbp ?file kbp in
        partial := ds;
        ds)
  with
  | ds -> List.sort D.compare ds
  | exception Budget.Exhausted reason ->
      List.sort D.compare
        (skipped ?file
           (Printf.sprintf "analysis budget exhausted (%s)"
              (Budget.reason_to_string reason))
        :: !partial)
