open Kpt_syntax

type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  file : string option;
  span : Loc.span option;
  message : string;
  hint : string option;
}

let v severity ?file ?span ?hint ~code message =
  { code; severity; file; span; message; hint }

let error ?file ?span ?hint ~code message = v Error ?file ?span ?hint ~code message
let warning ?file ?span ?hint ~code message = v Warning ?file ?span ?hint ~code message
let info ?file ?span ?hint ~code message = v Info ?file ?span ?hint ~code message

let with_file file d = match d.file with Some _ -> d | None -> { d with file = Some file }

let severity_label = function Error -> "error" | Warning -> "warning" | Info -> "info"
let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let span_key = function None -> Loc.dummy | Some s -> s in
  let c = Loc.compare (span_key a.span) (span_key b.span) in
  if c <> 0 then c
  else
    let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
    if c <> 0 then c else String.compare a.code b.code

let is_error d = d.severity = Error

let of_syntax_exn ?file = function
  | Token.Lex_error (span, msg) -> Some (error ?file ~span ~code:"KPT001" msg)
  | Parser.Parse_error (span, msg) -> Some (error ?file ~span ~code:"KPT002" msg)
  | Elaborate.Elab_error (span, msg) -> Some (error ?file ?span ~code:"KPT003" msg)
  | _ -> None

let pp fmt d =
  (match (d.file, d.span) with
  | Some f, Some s -> Format.fprintf fmt "%s:%d:%d: " f s.Loc.line s.Loc.col
  | Some f, None -> Format.fprintf fmt "%s: " f
  | None, Some s -> Format.fprintf fmt "%d:%d: " s.Loc.line s.Loc.col
  | None, None -> ());
  Format.fprintf fmt "%s[%s]: %s" (severity_label d.severity) d.code d.message

let nth_line src n =
  (* n is 1-based; returns None past the end *)
  let rec go start n =
    if start > String.length src then None
    else
      let stop =
        match String.index_from_opt src start '\n' with
        | Some i -> i
        | None -> String.length src
      in
      if n = 1 then Some (String.sub src start (stop - start))
      else go (stop + 1) (n - 1)
  in
  if n <= 0 then None else go 0 n

let pp_excerpt ~src fmt d =
  pp fmt d;
  (match d.span with
  | Some { Loc.line; col } when line > 0 -> (
      match nth_line src line with
      | Some text ->
          let prefix = Printf.sprintf "%4d | " line in
          Format.fprintf fmt "@,%s%s" prefix text;
          let pad = String.length prefix + col - 1 in
          Format.fprintf fmt "@,%s^" (String.make pad ' ')
      | None -> ())
  | _ -> ());
  match d.hint with
  | Some h -> Format.fprintf fmt "@,  hint: %s" h
  | None -> ()

let summary ds =
  let count sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
  let part n what = if n = 0 then [] else [ Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") ] in
  String.concat ", " (part (count Error) "error" @ part (count Warning) "warning" @ part (count Info) "info")

let exit_code ?(warn_error = false) ds =
  let bad d =
    match d.severity with Error -> true | Warning -> warn_error | Info -> false
  in
  if List.exists bad ds then 1 else 0
