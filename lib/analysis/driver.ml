(* Shared command bodies for the CLI and the serve daemon.  See the
   interface for the scoping contract; the rendering code is the former
   [bin/kpt.ml] command bodies verbatim, with [Format.std_formatter] /
   [err_formatter] replaced by buffer-backed formatters so the output
   becomes a value. *)

open Kpt_predicate
open Kpt_core

type options = {
  jobs : int option;
  json : bool;
  warn_error : bool;
  quiet : bool;
  slice : bool;
  semantic : bool;
  timings : bool;
  trace : bool;
  wrt : string list;
  limits : Budget.limits;
  reorder : Engine.reorder_mode;
}

let default_options =
  {
    jobs = None;
    json = false;
    warn_error = false;
    quiet = false;
    slice = false;
    semantic = false;
    timings = false;
    trace = false;
    wrt = [];
    limits = Budget.unlimited;
    reorder = Engine.Reorder_off;
  }

type outcome = { code : int; out : string; err : string }
type sink = string -> (string * int) list -> unit

(* exit-code contract, as documented in the README *)
let exit_resource = 3

(* Run one command body under per-request scoping: fresh engine (reset,
   belt and braces), the requested reorder policy pinned on *that
   engine* — never the process-wide default, which concurrent requests
   on other domains are reading ([Kpt_par.try_map] forwards the caller's
   effective mode to its per-task engines, so batch paths still see it)
   — the trace sink wired to [err] unless the caller supplies its own,
   and the engine's metrics merged into the caller's context on the way
   out.  The budget is *not* armed here: each body arms it via
   [Engine.with_budget] (or the pool's per-task arming) so the deadline
   is relative to the work it bounds. *)
let scoped ?sink opts body =
  let bout = Buffer.create 4096 in
  let berr = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer bout in
  let epf = Format.formatter_of_buffer berr in
  let caller = Engine.current () in
  let eng = Engine.create () in
  Kpt_obs.Ctx.reset (Engine.obs eng);
  (match sink with
  | Some _ -> Kpt_obs.Ctx.set_sink (Engine.obs eng) sink
  | None ->
      if opts.trace then
        Kpt_obs.Ctx.set_sink (Engine.obs eng) (Some (Kpt_obs.trace_sink epf)));
  Engine.set_reorder_mode eng (Some opts.reorder);
  let code =
    Fun.protect
      ~finally:(fun () ->
        Kpt_obs.Ctx.set_sink (Engine.obs eng) None;
        Engine.merge_metrics ~into:caller eng)
      (fun () -> Engine.use eng (fun () -> body ppf epf))
  in
  Format.pp_print_flush ppf ();
  Format.pp_print_flush epf ();
  { code; out = Buffer.contents bout; err = Buffer.contents berr }

(* Parse and elaborate one source; syntax-family errors render once,
   uniformly, as [file:line:col: error[KPT00x]: …] — the same funnel as
   the CLI's [with_loaded], against the in-memory source. *)
let with_loaded ~file ~src epf f =
  match Kpt_syntax.Elaborate.program (Kpt_syntax.Parser.program_of_string src) with
  | loaded -> f loaded
  | exception
      ((Kpt_syntax.Token.Lex_error _ | Kpt_syntax.Parser.Parse_error _
       | Kpt_syntax.Elaborate.Elab_error _) as exn) ->
      (match Diagnostic.of_syntax_exn ~file exn with
      | Some d -> Format.fprintf epf "%a@." Diagnostic.pp d
      | None -> Format.fprintf epf "error: %s@." (Printexc.to_string exn));
      1
  | exception Failure msg ->
      Format.fprintf epf "error: %s@." msg;
      1

(* ---- check (batch) -------------------------------------------------------- *)

let check ?sink opts sources =
  scoped ?sink opts @@ fun ppf _epf ->
  Check.run_sources ?jobs:opts.jobs ~budget:opts.limits ~slice:opts.slice
    ~warn_error:opts.warn_error ~quiet:opts.quiet ~json:opts.json ppf sources

(* ---- lint ------------------------------------------------------------------ *)

let lint ?sink opts sources =
  scoped ?sink opts @@ fun ppf _epf ->
  let budget = if Budget.is_unlimited opts.limits then None else Some opts.limits in
  Lint.run_sources ?jobs:opts.jobs ~semantic:opts.semantic ?budget ~json:opts.json
    ~warn_error:opts.warn_error ~quiet:opts.quiet ppf sources

(* ---- stats ----------------------------------------------------------------- *)

let stats_one ~file ~src ~json ~timings ppf epf =
  with_loaded ~file ~src epf @@ fun loaded ->
  match Stats.collect ~file loaded with
  | st ->
      if json then Format.pp_print_string ppf (Stats.to_json ~timings st)
      else Format.fprintf ppf "%a@." Stats.pp st;
      0
  | exception Failure msg ->
      Format.fprintf epf "error: %s@." msg;
      1

(* several files: profiled on the pool (each under its own engine, so
   every profile is the same one a single-file run would print) and
   rendered in input order — as a JSON array under --json *)
let stats_many ~jobs ~json ~timings sources ppf epf =
  let collected =
    Kpt_par.try_map ?jobs
      (fun (file, src) ->
        let sp, kbp =
          Kpt_syntax.Elaborate.program (Kpt_syntax.Parser.program_of_string src)
        in
        Stats.collect ~file (sp, kbp))
      sources
  in
  let code = ref 0 in
  if json then Format.pp_print_string ppf "[\n";
  List.iteri
    (fun i r ->
      match r with
      | Ok st ->
          if json then begin
            if i > 0 then Format.pp_print_string ppf ",\n";
            Format.pp_print_string ppf (Stats.to_json ~timings st)
          end
          else Format.fprintf ppf "%a@." Stats.pp st
      | Error exn ->
          code := 1;
          let file = fst (List.nth sources i) in
          (match Diagnostic.of_syntax_exn ~file exn with
          | Some d -> Format.fprintf epf "%a@." Diagnostic.pp d
          | None -> Format.fprintf epf "error: %s: %s@." file (Printexc.to_string exn)))
    collected;
  if json then Format.pp_print_string ppf "]\n";
  !code

let stats ?sink opts sources =
  scoped ?sink opts @@ fun ppf epf ->
  match sources with
  | [ (file, src) ] -> stats_one ~file ~src ~json:opts.json ~timings:opts.timings ppf epf
  | sources ->
      stats_many ~jobs:opts.jobs ~json:opts.json ~timings:opts.timings sources ppf epf

(* ---- solve (kpt solve-file) ------------------------------------------------ *)

let solve ?sink opts sources =
  scoped ?sink opts @@ fun ppf epf ->
  match sources with
  | [] ->
      Format.fprintf epf "error: solve needs a .unity file@.";
      2
  | (file, src) :: _ ->
      with_loaded ~file ~src epf @@ fun (sp, kbp) ->
      let kbp =
        if not opts.slice then kbp
        else begin
          let sliced, info = Slice.kbp kbp in
          if not (Slice.is_identity info) then
            Format.fprintf ppf "sliced: dropped %d of %d statement(s) outside the cone@."
              (List.length info.Slice.dropped)
              (List.length info.Slice.kept + List.length info.Slice.dropped);
          sliced
        end
      in
      Format.fprintf ppf "%a@.@." Kbp.pp kbp;
      let code = ref 0 in
      (match Engine.with_budget opts.limits (fun () -> Kbp.solutions kbp) with
      | [] ->
          Format.fprintf ppf
            "No solution: Ĝ(X) = X has no fixpoint (the KBP is not well-posed).@."
      | sols ->
          Format.fprintf ppf "%d solution(s):@." (List.length sols);
          List.iter (fun s -> Format.fprintf ppf "  SI = %a@." (Space.pp_pred sp) s) sols
      | exception Budget.Exhausted reason ->
          Format.fprintf ppf "Solution enumeration: budget exhausted (%s).@."
            (Budget.reason_to_string reason);
          code := exit_resource);
      (match Kbp.solve ~budget:opts.limits kbp with
      | Kbp.Converged { si; steps } ->
          Format.fprintf ppf "Chaotic iteration converged in %d step(s) to %a@." steps
            (Space.pp_pred sp) si
      | Kbp.Diverged { orbit; _ } ->
          Format.fprintf ppf "Chaotic iteration diverges: cycle with period %d.@."
            (List.length orbit)
      | Kbp.Budget_exhausted { reason; steps; candidate } ->
          Format.fprintf ppf
            "Chaotic iteration: budget exhausted (%s) after %d step(s); candidate X = %a@."
            (Budget.reason_to_string reason) steps (Space.pp_pred sp) candidate;
          code := exit_resource);
      !code

(* ---- slice ----------------------------------------------------------------- *)

let slice ?sink opts sources =
  scoped ?sink opts @@ fun ppf epf ->
  match sources with
  | [] ->
      Format.fprintf epf "error: slice needs a .unity file@.";
      2
  | (file, src) :: _ -> (
      with_loaded ~file ~src epf @@ fun (sp, kbp) ->
      match
        Engine.with_budget opts.limits @@ fun () ->
        try
          let compile s =
            try
              Kpt_unity.Expr.compile_bool sp
                (Kpt_syntax.Elaborate.expr sp (Kpt_syntax.Parser.expr_of_string s))
            with
            | Kpt_syntax.Elaborate.Elab_error (_, msg)
            | Kpt_syntax.Parser.Parse_error (_, msg)
            | Kpt_syntax.Token.Lex_error (_, msg) ->
                failwith (Printf.sprintf "in %S: %s" s msg)
          in
          let wrt = List.map compile opts.wrt in
          let sliced, info = Slice.kbp ~wrt kbp in
          Format.fprintf ppf "%s: @[<v>%a@]@." (Kbp.name kbp) (Slice.pp_info sp) info;
          if not (Slice.is_identity info) then Format.fprintf ppf "@.%a@." Kbp.pp sliced;
          0
        with Failure msg ->
          Format.fprintf epf "error: %s@." msg;
          1
      with
      | code -> code
      | exception Budget.Exhausted reason ->
          Format.fprintf ppf "budget exhausted: %s@." (Budget.reason_to_string reason);
          exit_resource)
