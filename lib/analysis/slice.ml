open Kpt_predicate
open Kpt_unity
open Kpt_core
module V = Rw.V

(* Cone-of-influence slicing as a model reduction.

   Property-directed slicing of a standard program is exactly
   verdict-preserving: seed the cone with the property's support, close it
   under "a statement writing a cone variable contributes all its reads"
   ({!Rw.program_cone}), and drop every statement writing no cone
   variable.  Kept statements read only cone variables (by closure), and
   dropped statements never write one, so the cone projection of every
   run of the full program is a run of the slice and vice versa: any
   invariant / stable / leads-to verdict over predicates supported by the
   cone coincides on the two programs.

   Knowledge guards break the locality of that argument — [K_i p]
   denotes relative to the whole program's SI (eq. 25), so a variable can
   influence a guard without ever being read by it.  KBP slicing is
   therefore conservative: the seed always includes the initial
   condition's support, every guard's reads (operator bodies included)
   and the variable set of every process mentioned by a [K]; inside that
   cone the [wcyl] quantifications of eq. 13 cannot tell the slice from
   the full protocol.  Standard programs wrapped in [Kbp.t] (no [K]
   anywhere) get the aggressive property seed.

   A property-less slice (the [kpt check/solve --slice] path) keeps
   everything the program can ever observe — the same conservative seed —
   so it only drops write-only sinks that even [init] does not constrain;
   on realistic specs it is the identity, and the solve verdict is
   preserved byte-for-byte. *)

type info = {
  cone : V.t;  (* variable indices spanning the cone of influence *)
  kept : string list;  (* statement names, in program order *)
  dropped : string list;
}

let is_identity info = info.dropped = []

let c_dropped = Kpt_obs.counter "slice.statements_dropped"

let support_vars sp p = Rw.vars_of_support sp (Bdd.support (Space.manager sp) p)

(* The seed of a property-directed slice is the UNION of the properties'
   supports — never their conjunction, which BDD simplification can
   collapse (e.g. [(x ∨ y) ∧ (x ∨ ¬y) = x] loses [y]) and with it the
   soundness of the cone. *)
let support_union sp preds =
  List.fold_left (fun acc p -> V.union acc (support_vars sp p)) V.empty preds

let partition_stmts cone stmts ~writes ~name =
  List.partition (fun s -> not (V.is_empty (V.inter (writes s) cone))) stmts
  |> fun (k, d) -> (k, d, List.map name k, List.map name d)

let program ?name ?(wrt = []) prog =
  let sp = Program.space prog in
  let stmts = Program.statements prog in
  let seed =
    match wrt with
    | _ :: _ -> support_union sp wrt
    | [] ->
        List.fold_left
          (fun acc s -> V.union acc (Rw.stmt_reads sp s))
          (support_vars sp (Program.init prog))
          stmts
  in
  let cone = Rw.program_cone prog seed in
  let kept, dropped, kn, dn =
    partition_stmts cone stmts ~writes:Rw.stmt_writes ~name:Stmt.name
  in
  (* a slice that would drop every statement degenerates to the identity:
     nothing influences the property, so any slice preserves it, and
     programs must stay non-empty *)
  if dropped = [] || kept = [] then (prog, { cone; kept = kn @ dn; dropped = [] })
  else begin
    Kpt_obs.add c_dropped (List.length dropped);
    (Program.sub_program ?name prog kept, { cone; kept = kn; dropped = dn })
  end

let kbp_conservative_seed k extra =
  let procs = Kbp.processes k in
  let kvars =
    List.concat_map
      (fun (s : Kbp.kstmt) -> Kform.processes_of s.Kbp.kguard)
      (Kbp.kstmts k)
    |> List.sort_uniq compare
    |> List.concat_map (fun pname ->
           match List.find_opt (fun p -> Process.name p = pname) procs with
           | Some p -> Process.vars p
           | None -> [])
  in
  List.fold_left
    (fun acc s -> V.union acc (Rw.kform_reads s.Kbp.kguard))
    (V.union extra
       (V.union
          (support_vars (Kbp.space k) (Kbp.init k))
          (Rw.of_vars kvars)))
    (Kbp.kstmts k)

let kbp ?name ?(wrt = []) k =
  let seed =
    match wrt with
    | _ :: _ when Kbp.is_standard k -> support_union (Kbp.space k) wrt
    | _ :: _ -> kbp_conservative_seed k (support_union (Kbp.space k) wrt)
    | [] -> kbp_conservative_seed k V.empty
  in
  let cone = Rw.kbp_cone k seed in
  let kept, dropped, kn, dn =
    partition_stmts cone (Kbp.kstmts k) ~writes:Rw.kstmt_writes
      ~name:(fun (s : Kbp.kstmt) -> s.Kbp.kname)
  in
  if dropped = [] || kept = [] then (k, { cone; kept = kn @ dn; dropped = [] })
  else begin
    Kpt_obs.add c_dropped (List.length dropped);
    (Kbp.sub ?name k kept, { cone; kept = kn; dropped = dn })
  end

let pp_info sp ppf info =
  let names set =
    String.concat ", "
      (List.map (fun i -> Space.name (Rw.var_of_idx sp i)) (V.elements set))
  in
  Format.fprintf ppf "cone: %s@," (if V.is_empty info.cone then "∅" else names info.cone);
  Format.fprintf ppf "kept: %d statement(s): %s@," (List.length info.kept)
    (String.concat ", " info.kept);
  if info.dropped = [] then Format.fprintf ppf "dropped: none (the slice is the identity)"
  else
    Format.fprintf ppf "dropped: %d statement(s): %s" (List.length info.dropped)
      (String.concat ", " info.dropped)
