(** The static-analysis passes behind [kpt lint].

    Everything here is purely syntactic / structural — no BDD is ever
    built — so the checks run (and the paper's Figure 1-2 pathologies are
    predicted) before any fixpoint search is attempted:

    - {e read/write sets} (see {!Rw}) feed every other pass;
    - {e knowledge locality} (eq. 13): a guard attributed to process [i]
      must depend only on [vars_i] outside its [K_i] operators — anything
      else is unimplementable;
    - {e K-polarity} (eq. 25, Figures 1-2): a knowledge operator in
      negative position, or knowledge {e of} a negated fact, can make
      [SI = strongest x : [ŜP.x ⇒ x]] unsolvable or non-monotonic in
      [init];
    - {e vacuity / hygiene}: unused and write-only variables, identity
      assignments, duplicate statements, constant guards, [nat(k)]
      comparisons against out-of-range constants;
    - {e interference}: a variable written on behalf of two different
      processes, or written by a process that cannot access it.

    [lint_kbp] / [lint_program] run the structural subset that makes
    sense on in-memory values (no spans), so protocols built through the
    OCaml API get the same checks the surface syntax does. *)

open Kpt_syntax
open Kpt_unity
open Kpt_core

val lint_ast : ?file:string -> Ast.program -> Diagnostic.t list
(** All passes over a parsed program, sorted in document order. *)

val lint_source : ?file:string -> string -> Diagnostic.t list
(** Lex, parse, lint, then elaborate: lexical / syntax errors surface as
    [KPT001]/[KPT002] diagnostics, elaboration errors as [KPT003], and a
    well-formed program gets the full {!lint_ast} treatment.  Never
    raises. *)

val lint_source_semantic :
  ?budget:Kpt_predicate.Budget.limits -> file:string -> string -> Diagnostic.t list
(** {!lint_source} plus the semantic tier: elaborate the source and run
    {!Semantic.analyse} on the loaded spec (KPT1xx findings, budgeted).
    An unsatisfiable initial condition — which elaboration rejects, so
    {!Semantic} never sees it — is recovered from the error message and
    reported as [KPT103] (replacing the generic [KPT003]).  Never
    raises. *)

val render_json : Format.formatter -> (string * Diagnostic.t list) list -> unit
(** The [kpt lint --json] shape: same top-level and per-file structure
    as [kpt check --json] ([files]/[errors]/[warnings]/[infos] and
    [reports] with [file]/[status]/[findings]/[diagnostics]), minus the
    per-file [stats] section. *)

val run_sources :
  ?jobs:int ->
  ?semantic:bool ->
  ?budget:Kpt_predicate.Budget.limits ->
  ?json:bool ->
  ?warn_error:bool ->
  ?quiet:bool ->
  Format.formatter ->
  (string * string) list ->
  int
(** [run_sources ppf [(file, contents); …]] is the driver behind
    [kpt lint]: lint every source, render diagnostics (with excerpts)
    and a summary to [ppf], and return the process exit code.  Files are
    linted on a [jobs]-wide pool (default {!Kpt_par.recommended_jobs})
    but rendered in input order, so the output does not depend on the
    pool size.  [~semantic:true] adds the budgeted KPT1xx tier
    ({!lint_source_semantic}; [budget] defaults to
    {!Kpt_predicate.Budget.analysis_default}); [~json:true] renders
    {!render_json} instead of text.  [~quiet:true] suppresses {e all}
    rendering but {e never} alters the exit code, which depends only on
    the findings: 1 iff any error, or any warning when
    [~warn_error:true]. *)

val lint_kbp : ?file:string -> Kbp.t -> Diagnostic.t list
(** Structural checks on an in-memory knowledge-based protocol:
    K-polarity and locality over its {!Kform.t} guards, plus hygiene and
    interference. *)

val lint_program : ?file:string -> Program.t -> Diagnostic.t list
(** Structural checks on a compiled standard program: hygiene (identity
    assignments, duplicates, unused / write-only variables, statically
    false guards). *)
