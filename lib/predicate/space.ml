type typ = Tbool | Tnat of int | Tenum of string array

(* Cylinder-machinery counters: [quant_data] is the memo every
   wcyl/knowledge call goes through, so its hit rate is the direct
   measure of how much the per-variable-set caching saves. *)
let c_quant_hit = Kpt_obs.counter "space.quant_cache.hits"
let c_quant_miss = Kpt_obs.counter "space.quant_cache.misses"

type var = {
  vname : string;
  vidx : int;
  vtyp : typ;
  voffset : int; (* first bit slot *)
  vwidth : int;
}

type state = int array

(* Everything the symbolic engine asks for repeatedly — the domain
   predicate, the identity (frame) relation, the flattened bit lists, the
   per-variable bit-vectors and the quantification data used by [wcyl] —
   is a pure function of the declared variables, so it is memoised here
   and invalidated (or generation-stamped) when a new variable is
   declared.  Fixpoint loops then pay for each of these once instead of
   once per iteration. *)
type t = {
  man : Bdd.manager;
  eng : Engine.t; (* context this space (and its metrics) belongs to *)
  mutable decls : var list; (* reversed *)
  mutable nslots : int;
  byname : (string, var) Hashtbl.t;
  mutable gen : int; (* bumped on each declaration *)
  mutable c_domain : Bdd.t option;
  mutable c_domain_next : Bdd.t option;
  mutable c_identity : Bdd.t option;
  mutable c_cur_bits : int list option;
  mutable c_next_bits : int list option;
  vec_tbl : (int, Bitvec.t * Bitvec.t) Hashtbl.t; (* vidx → cur, next vectors *)
  quant_tbl : (int list, int list * Bdd.t) Hashtbl.t;
      (* sorted vidx list → current bits, local-domain predicate *)
  compl_tbl : (int list, int * var list) Hashtbl.t;
      (* sorted vidx list → generation it was computed at, complement *)
}

let create ?engine () =
  let eng = match engine with Some e -> e | None -> Engine.current () in
  (* The engine decides the reordering policy (see {!Engine.reorder_mode}):
     [Reorder_auto] arms the manager's growth-triggered sifting;
     [Reorder_manual] leaves triggering to explicit {!reorder} calls. *)
  let auto = match Engine.reorder_mode eng with
    | Engine.Reorder_auto -> true
    | Engine.Reorder_off | Engine.Reorder_manual -> false
  in
  {
    man = Bdd.create ~reorder:auto ();
    eng;
    decls = [];
    nslots = 0;
    byname = Hashtbl.create 16;
    gen = 0;
    c_domain = None;
    c_domain_next = None;
    c_identity = None;
    c_cur_bits = None;
    c_next_bits = None;
    vec_tbl = Hashtbl.create 16;
    quant_tbl = Hashtbl.create 16;
    compl_tbl = Hashtbl.create 16;
  }

let manager sp = sp.man
let engine sp = sp.eng
let reorder sp = Bdd.reorder sp.man

let bits_for card =
  let rec go w = if 1 lsl w >= card then w else go (w + 1) in
  if card <= 1 then 1 else go 1

let declare sp name typ =
  if Hashtbl.mem sp.byname name then
    invalid_arg (Printf.sprintf "Space: duplicate variable %S" name);
  let card = match typ with Tbool -> 2 | Tnat m -> m + 1 | Tenum vs -> Array.length vs in
  if card < 1 then invalid_arg "Space: empty domain";
  let v =
    {
      vname = name;
      vidx = List.length sp.decls;
      vtyp = typ;
      voffset = sp.nslots;
      vwidth = bits_for card;
    }
  in
  sp.nslots <- sp.nslots + v.vwidth;
  sp.decls <- v :: sp.decls;
  Hashtbl.add sp.byname name v;
  (* invalidate whole-space caches; per-variable-set entries stay valid
     (their value does not depend on the other variables) except the
     complements, which are generation-checked on lookup *)
  sp.gen <- sp.gen + 1;
  sp.c_domain <- None;
  sp.c_domain_next <- None;
  sp.c_identity <- None;
  sp.c_cur_bits <- None;
  sp.c_next_bits <- None;
  v

let bool_var sp name = declare sp name Tbool

let nat_var sp name ~max =
  if max < 0 then invalid_arg "Space.nat_var: negative max";
  declare sp name (Tnat max)

let enum_var sp name ~values = declare sp name (Tenum values)
let vars sp = List.rev sp.decls
let find sp name = Hashtbl.find sp.byname name
let name v = v.vname
let idx v = v.vidx
let card v = match v.vtyp with Tbool -> 2 | Tnat m -> m + 1 | Tenum vs -> Array.length vs
let width v = v.vwidth

let value_name v k =
  match v.vtyp with
  | Tbool -> if k = 0 then "false" else "true"
  | Tnat _ -> string_of_int k
  | Tenum vs -> vs.(k)

let current_bits v = List.init v.vwidth (fun k -> 2 * (v.voffset + k))
let next_bits v = List.init v.vwidth (fun k -> (2 * (v.voffset + k)) + 1)

let all_current_bits sp =
  match sp.c_cur_bits with
  | Some bs -> bs
  | None ->
      let bs = List.concat_map current_bits (vars sp) in
      sp.c_cur_bits <- Some bs;
      bs

let all_next_bits sp =
  match sp.c_next_bits with
  | Some bs -> bs
  | None ->
      let bs = List.concat_map next_bits (vars sp) in
      sp.c_next_bits <- Some bs;
      bs

let vecs sp v =
  match Hashtbl.find_opt sp.vec_tbl v.vidx with
  | Some vecs -> vecs
  | None ->
      let cur =
        Bitvec.of_bits (Array.init v.vwidth (fun k -> Bdd.var sp.man (2 * (v.voffset + k))))
      in
      let nxt =
        Bitvec.of_bits
          (Array.init v.vwidth (fun k -> Bdd.var sp.man ((2 * (v.voffset + k)) + 1)))
      in
      Hashtbl.add sp.vec_tbl v.vidx (cur, nxt);
      (cur, nxt)

let cur_vec sp v = fst (vecs sp v)
let next_vec sp v = snd (vecs sp v)
let to_next sp p = Bdd.rename sp.man (fun b -> b + 1) p
let to_current sp p = Bdd.rename sp.man (fun b -> b - 1) p

let range_constraint sp vec v = Bitvec.le sp.man vec (Bitvec.const sp.man ~width:v.vwidth (card v - 1))

let domain sp =
  match sp.c_domain with
  | Some d -> d
  | None ->
      let d =
        Bdd.conj sp.man
          (List.filter_map
             (fun v ->
               if card v = 1 lsl v.vwidth then None
               else Some (range_constraint sp (cur_vec sp v) v))
             (vars sp))
      in
      sp.c_domain <- Some d;
      d

let domain_next sp =
  match sp.c_domain_next with
  | Some d -> d
  | None ->
      let d =
        Bdd.conj sp.man
          (List.filter_map
             (fun v ->
               if card v = 1 lsl v.vwidth then None
               else Some (range_constraint sp (next_vec sp v) v))
             (vars sp))
      in
      sp.c_domain_next <- Some d;
      d

(* The identity transition relation: every next-bit copy equals its
   current-bit copy.  Shared by every statement's skip branch. *)
let identity sp =
  match sp.c_identity with
  | Some i -> i
  | None ->
      let i =
        Bdd.conj sp.man
          (List.map (fun v -> Bitvec.eq sp.man (next_vec sp v) (cur_vec sp v)) (vars sp))
      in
      sp.c_identity <- Some i;
      i

let varset_key vs = List.sort_uniq compare (List.map (fun v -> v.vidx) vs)

(* Quantification data for a variable set: its flattened current bits and
   the range constraints of exactly those variables ([local domain] — the
   relativisation that keeps ∀/∃ ranging over type-correct values only).
   Both depend only on the variables themselves, so entries survive later
   declarations. *)
let quant_data sp vs =
  let key = varset_key vs in
  match Hashtbl.find_opt sp.quant_tbl key with
  | Some data ->
      Kpt_obs.incr c_quant_hit;
      data
  | None ->
      Kpt_obs.incr c_quant_miss;
      let bits = List.concat_map current_bits vs in
      let local =
        Bdd.conj sp.man
          (List.filter_map
             (fun v ->
               if card v = 1 lsl v.vwidth then None
               else Some (range_constraint sp (cur_vec sp v) v))
             vs)
      in
      Hashtbl.add sp.quant_tbl key (bits, local);
      (bits, local)

let complement sp vs =
  let key = varset_key vs in
  match Hashtbl.find_opt sp.compl_tbl key with
  | Some (g, res) when g = sp.gen -> res
  | _ ->
      let res =
        List.filter (fun v -> not (List.exists (fun u -> u.vidx = v.vidx) vs)) (vars sp)
      in
      Hashtbl.replace sp.compl_tbl key (sp.gen, res);
      res

let state_count sp = List.fold_left (fun acc v -> acc * card v) 1 (vars sp)

let state_count_exact sp =
  List.fold_left (fun acc v -> Bigcount.mul_int acc (card v)) Bigcount.one (vars sp)

let iter_states sp f =
  let vs = Array.of_list (vars sp) in
  let n = Array.length vs in
  let st = Array.make (max n 1) 0 in
  let rec go i = if i = n then f st else
    for value = 0 to card vs.(i) - 1 do
      st.(i) <- value;
      go (i + 1)
    done
  in
  go 0

(* Valuation of current bits induced by a state. *)
let valuation sp st bit =
  assert (bit land 1 = 0);
  let slot = bit / 2 in
  let v = List.find (fun v -> v.voffset <= slot && slot < v.voffset + v.vwidth) (vars sp) in
  (st.(v.vidx) lsr (slot - v.voffset)) land 1 = 1

let holds_at sp p st = Bdd.eval p (valuation sp st)

let pred_of_state sp st =
  List.fold_left
    (fun acc v -> Bdd.and_ sp.man acc (Bitvec.eq_const sp.man (cur_vec sp v) st.(v.vidx)))
    (Bdd.tru sp.man) (vars sp)

let states_of sp p =
  let acc = ref [] in
  iter_states sp (fun st -> if holds_at sp p st then acc := Array.copy st :: !acc);
  List.rev !acc

(* Symbolic state counting: a state predicate depends only on current
   (even) bits, so its exact model count over {e all} [2·nslots] bit
   copies is the state count times 2^nslots (each absent next bit is a
   don't-care) — one exact halving per slot recovers the state count in
   O(nodes) instead of a walk over the whole state space.  (Counting this
   way rather than squeezing the even bits onto consecutive indices needs
   no rename, and stays valid when the manager has reordered — the
   squeeze map is only order-preserving under the identity order.)
   Conjoining the domain first discards out-of-range encodings of
   non-power-of-two sorts.  A predicate that does mention next-state bits
   (no normalized state predicate does) falls back to explicit
   enumeration. *)
let count_states_exact sp p =
  let q = Bdd.and_ sp.man p (domain sp) in
  if List.exists (fun b -> b land 1 = 1) (Bdd.support sp.man q) then begin
    let n = ref 0 in
    iter_states sp (fun st -> if holds_at sp p st then incr n);
    Bigcount.of_int !n
  end
  else
    Bigcount.shift_right (Bdd.sat_count_exact sp.man ~nvars:(2 * sp.nslots) q) sp.nslots

let count_states_of sp p =
  match Bigcount.to_int (count_states_exact sp p) with
  | Some n -> n
  | None -> max_int

let pp_state sp fmt st =
  Format.fprintf fmt "@[<h>⟨";
  List.iteri
    (fun i v ->
      if i > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "%s=%s" v.vname (value_name v st.(v.vidx)))
    (vars sp);
  Format.fprintf fmt "⟩"

let pp_pred sp fmt p =
  let sts = states_of sp p in
  Format.fprintf fmt "@[<hov 2>{";
  List.iteri
    (fun i st ->
      if i > 0 then Format.fprintf fmt ",@ ";
      pp_state sp fmt st)
    sts;
  Format.fprintf fmt "}@]"
