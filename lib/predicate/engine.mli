(** Explicit engine contexts for the symbolic core.

    Historically the engine's mutable state fell in two tiers: the BDD
    unique table, op-cache and [Space] memo tables are owned by the
    {!Bdd.manager} each {!Space.t} creates (so two spaces never share
    them — already re-entrant), while the observability layer
    ({!Kpt_obs} counters, spans, sink) was process-global.  An
    [Engine.t] names the context a space and its metrics belong to: one
    engine per domain (or per task), and everything it touches is
    single-owner.

    Call sites that never say the word keep working: {!Space.create}
    defaults to {!default}, which reports into the root metric context —
    exactly the pre-engine behaviour.  The parallel pool ({!Kpt_par})
    gives each task {!create} + {!use}, then {!merge_metrics} after the
    join. *)

type t
(** An engine context: an identity plus the {!Kpt_obs.Ctx.t} its
    workloads report into.  Cheap (two words); thread-safe to {e pass}
    between domains, but at most one domain may be running under it at a
    time. *)

val default : t
(** The process-default engine, backed by {!Kpt_obs.Ctx.root}.  What
    every call site that predates engines gets. *)

val create : unit -> t
(** A fresh engine with a private, zeroed metric context. *)

val id : t -> int
(** A process-unique id ({!default} is 0); useful in logs and tests. *)

val is_default : t -> bool

val obs : t -> Kpt_obs.Ctx.t
(** The metric context this engine's workloads report into. *)

val current : unit -> t
(** The engine of the innermost enclosing {!use} on this domain;
    {!default} outside any. *)

val use : t -> (unit -> 'a) -> 'a
(** [use e f] runs [f] with [e] as the domain's {!current} engine and
    [e]'s metric context installed (both restored afterwards, also on
    exceptions).  All counter bumps, spans and trace events inside [f]
    land in [e], and spaces created inside [f] belong to it. *)

val merge_metrics : into:t -> t -> unit
(** [merge_metrics ~into src] folds [src]'s counters and spans into
    [into] ({!Kpt_obs.Ctx.merge} semantics: sums, [max] for
    high-watermarks).  Only after [src]'s owning domain has joined. *)

val counters : t -> (string * int) list
val spans : t -> (string * int64 * int) list

(** {2 Variable-reordering policy}

    Whether the BDD managers of spaces created under an engine reorder
    their variables dynamically.  The policy is engine configuration
    rather than a [Space.create] argument so the CLI can set it once and
    have every space — program, KBP bases, knowledge cylinders, worker
    tasks — pick it up uniformly. *)

type reorder_mode =
  | Reorder_off  (** static variable order (the historical behaviour) *)
  | Reorder_auto  (** sifting triggered by node-growth thresholds *)
  | Reorder_manual
      (** no automatic triggers; callers invoke {!Space.reorder} at
          chosen quiescent points *)

val set_default_reorder_mode : reorder_mode -> unit
(** Set the process-wide default (initially {!Reorder_off}).  Read by
    every engine without an explicit override, including freshly created
    pool-task engines. *)

val default_reorder_mode : unit -> reorder_mode

val reorder_mode : t -> reorder_mode
(** The engine's effective policy: its override if set, else the process
    default. *)

val set_reorder_mode : t -> reorder_mode option -> unit
(** Override (or, with [None], un-override) the policy for one engine. *)

(** {2 Resource budgets}

    A budget ({!Budget.t}) rides on the engine: the fixpoint loops and
    the BDD node allocator call {!checkpoint}/{!check_nodes} against the
    {e current} engine's budget, so arming one bounds everything the
    enclosing {!use} runs — and the parallel pool gets per-task
    deadlines by arming each task's private engine. *)

val set_budget : t -> Budget.t option -> unit
(** Install (or clear) an armed budget on [t]. *)

val budget : t -> Budget.t option

val with_budget : ?engine:t -> Budget.limits -> (unit -> 'a) -> 'a
(** [with_budget limits f] arms a fresh budget from [limits] on [engine]
    (default: the {!current} engine) for the duration of [f], restoring
    the previous budget afterwards.  {!Budget.unlimited} arms nothing.
    Does not catch {!Budget.Exhausted} — that is the caller's choice. *)

val checkpoint : ?fuel:int -> unit -> unit
(** Check the current engine's budget (deadline, and consume [fuel]
    units if given). No-op — one domain-local read — when no budget is
    armed. Raises {!Budget.Exhausted}. *)

val check_nodes : int -> unit
(** Check the current engine's node ceiling and deadline against a node
    count. No-op when no budget is armed. Raises {!Budget.Exhausted}. *)
