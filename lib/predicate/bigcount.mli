(** Exact non-negative big integers for model counting.

    [Bdd.sat_count] used to compute counts as [float] powers of two,
    which silently loses precision above 2{^53} satisfying assignments
    and overflows to [infinity] near 1024 variables — state spaces the
    scaling harness already reaches.  This module is the exact
    replacement: an arbitrary-precision unsigned integer with just the
    operations counting needs (no division, no subtraction), rendered as
    an exact decimal string.  The [float] view survives as a lossy
    convenience. *)

type t
(** An arbitrary-precision non-negative integer.  Values are immutable
    and structurally comparable via {!compare}/{!equal}. *)

val zero : t
val one : t

val of_int : int -> t
(** @raise Invalid_argument on a negative argument. *)

val add : t -> t -> t
val mul_int : t -> int -> t
(** Multiply by a small non-negative factor.
    @raise Invalid_argument on a negative factor. *)

val shift_left : t -> int -> t
(** [shift_left x k] is [x · 2{^k}].  @raise Invalid_argument on k < 0. *)

val pow2 : int -> t
(** [pow2 k] is [2{^k}] — the count of a full cube over [k] variables. *)

val shift_right : t -> int -> t
(** [shift_right x k] is [x / 2{^k}], required exact: counting over a
    space with [k] redundant variables yields a multiple of [2{^k}].
    @raise Invalid_argument on k < 0 or when [2{^k}] does not divide
    [x]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val to_string : t -> string
(** Exact decimal rendering (no exponent, no rounding): the string is a
    valid arbitrary-precision JSON number. *)

val to_float : t -> float
(** Nearest float; [infinity] beyond the float range.  This is the lossy
    view the old [sat_count] returned. *)

val to_int : t -> int option
(** [Some n] iff the value fits a native [int]. *)

val pp : Format.formatter -> t -> unit
(** Prints {!to_string}. *)
