(** Reduced ordered binary decision diagrams (ROBDDs), hash-consed.

    This module is the semantic bedrock of the whole library: the paper
    treats predicates as {e semantic objects} — Boolean-valued total
    functions on the state space — and ROBDDs give each such function a
    canonical representative, so predicate equality ([[p ≡ q]] in the
    paper's notation) is decided by physical equality, and all the
    fixpoints ([sst], [SI], fair leads-to) terminate by node comparison.

    All nodes live inside a {!manager}; mixing nodes from different
    managers is a programming error (detected by [assert] in debug
    builds).  Variables are non-negative integers; initially variable [i]
    sits at level [i] of the order (smaller indices nearer the root), but
    the manager may {e reorder} — permute the variable/level map — either
    on demand ({!reorder}) or automatically ({!set_auto_reorder}).
    Reordering is semantics-transparent: nodes are rewritten in place, so
    every handle keeps denoting the same Boolean function and canonicity
    (semantic equality = physical equality) is preserved throughout. *)

type manager
(** Mutable node store: the exact hash-consing unique table plus a packed
    direct-mapped operation cache (CUDD-style).  Both tables pack each
    entry's key into one native int stored beside its payload, so probes
    are a single compare and allocate nothing; both start small and grow
    on demand.  The op-cache is lossy — an entry overwritten on collision
    only costs a recomputation, never correctness — while the unique
    table is exact at any size (keys beyond the packed range spill into
    an exact hash table). *)

type t
(** A BDD node.  Canonical: two nodes of the same manager denote the same
    Boolean function iff they are physically equal. *)

val create : ?unique_size:int -> ?cache_size:int -> ?reorder:bool -> unit -> manager
(** Fresh manager.  [unique_size] is the initial capacity of the unique
    table (it grows as needed); [cache_size] is the {e maximum} slot count
    of the direct-mapped operation cache, rounded up to a power of two.
    The cache starts small and grows on demand, so creating a manager is
    cheap even with a large [cache_size].  [reorder] (default [false])
    enables automatic sifting as by [set_auto_reorder m true]. *)

val reorder : manager -> unit
(** Run one sifting pass now (Rudell's algorithm over adjacent-level
    swaps, moving interleaved current/next variable pairs as blocks).
    All existing handles remain valid and canonical.  No-op while another
    operation of the same manager is in flight. *)

val set_auto_reorder : manager -> ?threshold:int -> bool -> unit
(** Enable or disable automatic reordering.  When enabled, a sifting pass
    is triggered at the entry of the next top-level operation after the
    node count crosses [threshold] (default 2{^16}); after each pass the
    threshold doubles away from the surviving node count, so a workload
    that keeps growing re-sifts at geometrically coarser intervals. *)

val level_of_var : manager -> int -> int
(** Current level (position in the variable order, 0 = root) of a
    variable index.  Identity until the first reordering. *)

val clear_caches : manager -> unit
(** Empty the operation cache (the unique table is kept, so existing
    nodes stay valid).  Useful between unrelated fixpoint computations. *)

val tru : manager -> t
(** The constant-true predicate. *)

val fls : manager -> t
(** The constant-false predicate. *)

val var : manager -> int -> t
(** [var m i] is the predicate "variable [i] is true". *)

val nvar : manager -> int -> t
(** [nvar m i] is the predicate "variable [i] is false". *)

val uid : t -> int
(** Stable unique identifier within the manager. *)

val equal : t -> t -> bool
(** Physical (hence semantic) equality. *)

val is_true : t -> bool
val is_false : t -> bool

val not_ : manager -> t -> t
val and_ : manager -> t -> t -> t
val or_ : manager -> t -> t -> t
val xor : manager -> t -> t -> t
val imp : manager -> t -> t -> t
val iff : manager -> t -> t -> t

val ite : manager -> t -> t -> t -> t
(** [ite m c a b] is the pointwise "if [c] then [a] else [b]". *)

val conj : manager -> t list -> t
(** n-ary conjunction ([tru] on the empty list), combined as a balanced
    tree so intermediate BDDs stay small. *)

val disj : manager -> t list -> t
(** n-ary disjunction ([fls] on the empty list), balanced like {!conj}. *)

val implies : manager -> t -> t -> bool
(** The everywhere operator applied to an implication: [[p ⇒ q]]. *)

val restrict : manager -> t -> int -> bool -> t
(** Cofactor: fix variable [i] to the given polarity. *)

val exists : manager -> int list -> t -> t
(** Existential quantification over a set of variables. *)

val forall : manager -> int list -> t -> t
(** Universal quantification over a set of variables.  [forall m vs p] is
    the paper's [(∀ vs :: p)] used to build weakest cylinders (eq. 6). *)

val and_exists : manager -> int list -> t -> t -> t
(** Relational product [∃vs. a ∧ b], computed without building [a ∧ b]
    in full.  Workhorse of image computation ([sp]). *)

val rename : manager -> (int -> int) -> t -> t
(** Variable renaming.  The function should be strictly monotone on the
    support of the argument {e with respect to the current level order}
    (true of the interleaved current/next column shifts used throughout
    the library, including after pair-block reordering); a map found to
    be non-monotone under the current order is still handled correctly
    through a slower compose-based path. *)

val support : manager -> t -> int list
(** Variables the predicate depends on, ascending. *)

val depends_on : manager -> t -> int -> bool
(** [depends_on m p i] iff the function [p] is not independent of
    variable [i] (the paper's notion of (in)dependence, §3). *)

val size : manager -> t -> int
(** Number of distinct internal nodes reachable from the root. *)

val node_count : manager -> int
(** Total nodes ever hash-consed in the manager. *)

val live_count : manager -> int
(** Nodes currently in the unique table (plus the two leaves). *)

val gc : manager -> roots:t list -> unit
(** Garbage-collect the unique table: every node not reachable from the
    roots is dropped (operation caches are cleared too).  Root handles —
    and any node reachable from them — remain valid and canonical; any
    {e other} retained handle becomes stale: it still evaluates correctly
    but is no longer hash-consed, so [equal] with newly built nodes may
    return false.  Collect only at points where the set of live
    predicates is known (e.g. between fixpoint computations). *)

val sat_count_exact : manager -> nvars:int -> t -> Bigcount.t
(** Exact number of satisfying assignments over variables [0..nvars-1];
    correct at any size (no float rounding past 2{^53}, no overflow). *)

val sat_count : manager -> nvars:int -> t -> float
(** Number of satisfying assignments over variables [0..nvars-1], as the
    nearest float — a lossy convenience view of {!sat_count_exact}. *)

type stats = {
  nodes_created : int;  (** uids allocated over the manager's lifetime *)
  live_nodes : int;  (** nodes currently in the unique table (+ leaves) *)
  unique_slots : int;  (** open-addressing slots of the unique table *)
  unique_load : float;  (** occupancy fraction of the unique table *)
  spill_nodes : int;  (** nodes beyond the packed-key range *)
  cache_slots : int;  (** current op-cache slot count (grows on demand) *)
}

val stats : manager -> stats
(** Structural snapshot of a manager's tables.  The {e dynamic} side —
    op-cache hits/misses/stores, grow events, peak node count — is kept
    in the process-global [Kpt_obs] counters (["bdd.*"]). *)

val any_sat : manager -> t -> (int * bool) list
(** One satisfying partial assignment (variables not listed are
    don't-care).  @raise Not_found on the false predicate. *)

val iter_sat : manager -> vars:int list -> t -> ((int -> bool) -> unit) -> unit
(** [iter_sat m ~vars p f] calls [f] once per total assignment to [vars]
    satisfying [p]; the callback receives a lookup function.  [vars] must
    be sorted ascending and contain the support of [p]. *)

val eval : t -> (int -> bool) -> bool
(** Evaluate the predicate at a point given as a variable valuation. *)

val pp : manager -> Format.formatter -> t -> unit
(** Structural printer (if-then-else normal form), for debugging. *)
