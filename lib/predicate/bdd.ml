(* Hash-consed ROBDDs.  Levels: variable index, [leaf_level] for leaves.
   Canonicity invariant: no node has [low == high], and every (level, low,
   high) triple is hash-consed, so semantic equality is physical equality. *)

let leaf_level = max_int

type t = { uid : int; level : int; low : t; high : t }

(* Engine counters (process-global, aggregated over every manager).  An
   increment is a single field write, so the hot paths pay for them
   unconditionally; `kpt stats` and the bench harness snapshot them. *)
let c_hit = Kpt_obs.counter "bdd.op_cache.hits"
let c_miss = Kpt_obs.counter "bdd.op_cache.misses"
let c_store = Kpt_obs.counter "bdd.op_cache.stores"
let c_op_grow = Kpt_obs.counter "bdd.op_cache.grows"
let c_spill = Kpt_obs.counter "bdd.op_cache.spills"
let c_node = Kpt_obs.counter "bdd.nodes.created"
let c_peak = Kpt_obs.counter "bdd.nodes.peak"
let c_uq_grow = Kpt_obs.counter "bdd.unique.grows"

(* Both manager tables are packed: each entry's key is one native int
   encoding the operands bit-by-bit, stored next to its payload in two
   parallel arrays.  Packing is exact — two keys are equal iff the
   operand triples are equal — so a probe is a single load-and-compare
   and allocates nothing.

   The operation cache is CUDD-style direct-mapped: collisions overwrite
   (the cache is lossy — dropping an entry only costs a recomputation).
   The unique table uses open addressing with linear probing and stays
   {e exact}: entries are never dropped and the table doubles when
   2·count exceeds the slot count, because hash-consing must never be
   lossy or canonicity breaks.

   Packing needs uids < 2^20 (a million live nodes — far beyond the
   state spaces this library targets, but not impossible).  Keys out of
   that range take a [Hashtbl] fallback path keyed on the full triple:
   exactness is preserved at any size, only the packed fast path is
   bounded.  Key 0 doubles as the empty-slot sentinel; it is unreachable
   as a real key (see [uq_key]/[op_key] below). *)
type manager = {
  mutable next_uid : int;
  mutable uq_count : int; (* entries in the packed table *)
  mutable uq_key : int array; (* 0 = empty slot *)
  mutable uq_node : t array;
  uq_spill : (int * int * int, t) Hashtbl.t; (* level/uid beyond packing *)
  op_cap : int; (* maximum slot count (power of two) *)
  mutable op_stores : int; (* misses stored since the last grow/clear *)
  mutable op_mask : int;
  mutable op_key : int array; (* 0 = empty slot *)
  mutable op_res : t array;
  op_spill : (int * int * int * int, t) Hashtbl.t; (* uids beyond packing *)
  t_true : t;
  t_false : t;
}

(* Packed unique-table key: level:23 | low:20 | high:20 bits.  Zero would
   need level = low = high = 0, i.e. the node (v0, false, false) — but
   [mk] never stores a node with [low == high], so 0 is free as the
   empty-slot sentinel. *)
let uid_limit = 1 lsl 20
let level_limit = 1 lsl 23
let uq_key level lo hi = (((level lsl 20) lor lo) lsl 20) lor hi
let uq_packs level lo hi = level < level_limit && lo < uid_limit && hi < uid_limit

(* Packed op-cache key: tag:3 | x:20 | y:20 | z:20 bits.  Zero would need
   tag = op_and with x = y = z = 0, i.e. and(false, false) — a terminal
   case that is never cached, so 0 is free as the empty-slot sentinel. *)
let op_key tag x y z = (((((tag lsl 20) lor x) lsl 20) lor y) lsl 20) lor z
let op_packs x y z = x < uid_limit && y < uid_limit && z < uid_limit

let make_leaf uid =
  let rec n = { uid; level = leaf_level; low = n; high = n } in
  n

let rec pow2_at_least k n = if n >= k then n else pow2_at_least k (n * 2)

(* The cache starts tiny and quadruples on demand (up to [op_cap]), so
   short-lived managers — one per [Space.create] — pay a few hundred words
   up front rather than megabytes.  Growing simply discards the old arrays:
   the cache is lossy by design, so dropped entries only cost recomputation. *)
let initial_slots = 1024

let create ?(unique_size = 1 lsl 11) ?(cache_size = 1 lsl 14) () =
  let t_false = make_leaf 0 in
  let cap = pow2_at_least (max 1 cache_size) 1 in
  let slots = min initial_slots cap in
  let uq_slots = pow2_at_least (max 16 unique_size) 16 in
  {
    next_uid = 2;
    uq_count = 0;
    uq_key = Array.make uq_slots 0;
    uq_node = Array.make uq_slots t_false;
    uq_spill = Hashtbl.create 16;
    op_cap = cap;
    op_stores = 0;
    op_mask = slots - 1;
    op_key = Array.make slots 0;
    op_res = Array.make slots t_false;
    op_spill = Hashtbl.create 16;
    t_true = make_leaf 1;
    t_false;
  }

let clear_caches m =
  m.op_stores <- 0;
  Array.fill m.op_key 0 (Array.length m.op_key) 0;
  (* drop result pointers too so cleared entries don't keep nodes alive *)
  Array.fill m.op_res 0 (Array.length m.op_res) m.t_false;
  Hashtbl.reset m.op_spill

(* Fibonacci-style multiplicative mixing of a packed key. *)
let slot_of mask key =
  let h = (key lxor (key lsr 29)) * 0x9E3779B1 in
  (h lxor (h lsr 17)) land mask

let grow_cache m =
  Kpt_obs.incr c_op_grow;
  let slots = min (4 * (m.op_mask + 1)) m.op_cap in
  let keys = Array.make slots 0 in
  let res = Array.make slots m.t_false in
  (* rehash the live entries so growing never loses warmth *)
  let mask = slots - 1 in
  for i = 0 to m.op_mask do
    let k = m.op_key.(i) in
    if k <> 0 then begin
      let j = slot_of mask k in
      keys.(j) <- k;
      res.(j) <- m.op_res.(i)
    end
  done;
  m.op_stores <- 0;
  m.op_mask <- mask;
  m.op_key <- keys;
  m.op_res <- res

let tru m = m.t_true
let fls m = m.t_false
let uid n = n.uid
let equal a b = a == b
let is_leaf n = n.level = leaf_level
let is_true n = n.level = leaf_level && n.uid = 1
let is_false n = n.level = leaf_level && n.uid = 0

(* Place a node with packed key [k] into arrays known to have a free slot. *)
let uq_place keys nodes mask k n =
  let i = ref (slot_of mask k) in
  while keys.(!i) <> 0 do
    i := (!i + 1) land mask
  done;
  keys.(!i) <- k;
  nodes.(!i) <- n

let grow_unique m =
  Kpt_obs.incr c_uq_grow;
  let slots = 2 * Array.length m.uq_key in
  let mask = slots - 1 in
  let keys = Array.make slots 0 in
  let nodes = Array.make slots m.t_false in
  for i = 0 to Array.length m.uq_key - 1 do
    if m.uq_key.(i) <> 0 then uq_place keys nodes mask m.uq_key.(i) m.uq_node.(i)
  done;
  m.uq_key <- keys;
  m.uq_node <- nodes

(* Stores into a stale index after a mid-recursion grow land in a wrong
   slot of the larger arrays; that is harmless — a hit checks the exact
   packed key, so a misplaced entry can only be returned for its own key. *)
let cache_store m i k r =
  Kpt_obs.incr c_store;
  m.op_stores <- m.op_stores + 1;
  if m.op_stores > (m.op_mask + 1) / 4 && m.op_mask + 1 < m.op_cap then grow_cache m;
  m.op_key.(i) <- k;
  m.op_res.(i) <- r

let fresh_node m level low high =
  let n = { uid = m.next_uid; level; low; high } in
  m.next_uid <- m.next_uid + 1;
  Kpt_obs.incr c_node;
  Kpt_obs.record_max c_peak m.next_uid;
  (* Amortised budget check: the node ceiling (and, between fixpoint
     rounds, the deadline) must bite even inside one pathological apply,
     but a per-node check would tax every allocation — every 4096 nodes
     keeps the overhead unmeasurable. *)
  if m.next_uid land 4095 = 0 then Engine.check_nodes m.next_uid;
  n

let mk m level low high =
  if low == high then low
  else begin
    let lo = low.uid and hi = high.uid in
    if uq_packs level lo hi then begin
      let k = uq_key level lo hi in
      let mask = Array.length m.uq_key - 1 in
      let i = ref (slot_of mask k) in
      while m.uq_key.(!i) <> 0 && m.uq_key.(!i) <> k do
        i := (!i + 1) land mask
      done;
      if m.uq_key.(!i) = k then m.uq_node.(!i)
      else begin
        let n = fresh_node m level low high in
        m.uq_key.(!i) <- k;
        m.uq_node.(!i) <- n;
        m.uq_count <- m.uq_count + 1;
        if 2 * m.uq_count > mask + 1 then grow_unique m;
        n
      end
    end
    else begin
      (* beyond the packed range: exact spill table, same canonicity *)
      let key = (level, lo, hi) in
      match Hashtbl.find_opt m.uq_spill key with
      | Some n -> n
      | None ->
          let n = fresh_node m level low high in
          Hashtbl.add m.uq_spill key n;
          n
    end
  end

let var m i =
  assert (0 <= i && i < leaf_level);
  mk m i m.t_false m.t_true

let nvar m i =
  assert (0 <= i && i < leaf_level);
  mk m i m.t_true m.t_false

(* Operation tags for the packed cache.  Binary boolean operators use
   their own tag with z = 0; [not] and [ite] get dedicated tags. *)
let op_and = 0
let op_or = 1
let op_xor = 2
let op_imp = 3
let op_iff = 4
let op_ite = 5
let op_not = 6

(* Binary apply.  [op] tags the cache entry; [terminal] decides leaves and
   short-circuits.  Commutative operators normalise the cache key. *)
let bin m ~op ~commutative ~terminal =
  let rec compute a b =
    let lvl = min a.level b.level in
    let a0, a1 = if a.level = lvl then (a.low, a.high) else (a, a) in
    let b0, b1 = if b.level = lvl then (b.low, b.high) else (b, b) in
    mk m lvl (go a0 b0) (go a1 b1)
  and go a b =
    match terminal a b with
    | Some r -> r
    | None ->
        let x, y =
          if commutative && a.uid > b.uid then (b.uid, a.uid) else (a.uid, b.uid)
        in
        if op_packs x y 0 then begin
          let k = op_key op x y 0 in
          let i = slot_of m.op_mask k in
          if m.op_key.(i) = k then begin
            Kpt_obs.incr c_hit;
            m.op_res.(i)
          end
          else begin
            Kpt_obs.incr c_miss;
            let r = compute a b in
            cache_store m i k r;
            r
          end
        end
        else begin
          Kpt_obs.incr c_spill;
          match Hashtbl.find_opt m.op_spill (op, x, y, 0) with
          | Some r ->
              Kpt_obs.incr c_hit;
              r
          | None ->
              Kpt_obs.incr c_miss;
              let r = compute a b in
              Hashtbl.replace m.op_spill (op, x, y, 0) r;
              r
        end
  in
  go

let and_ m a b =
  let terminal a b =
    if is_false a || is_false b then Some m.t_false
    else if is_true a then Some b
    else if is_true b then Some a
    else if a == b then Some a
    else None
  in
  bin m ~op:op_and ~commutative:true ~terminal a b

let or_ m a b =
  let terminal a b =
    if is_true a || is_true b then Some m.t_true
    else if is_false a then Some b
    else if is_false b then Some a
    else if a == b then Some a
    else None
  in
  bin m ~op:op_or ~commutative:true ~terminal a b

let rec not_ m a =
  if is_true a then m.t_false
  else if is_false a then m.t_true
  else if op_packs a.uid 0 0 then begin
    let k = op_key op_not a.uid 0 0 in
    let i = slot_of m.op_mask k in
    if m.op_key.(i) = k then begin
      Kpt_obs.incr c_hit;
      m.op_res.(i)
    end
    else begin
      Kpt_obs.incr c_miss;
      let r = mk m a.level (not_ m a.low) (not_ m a.high) in
      cache_store m i k r;
      (* seed the reverse direction too: ¬r = a *)
      if op_packs r.uid 0 0 then begin
        let k' = op_key op_not r.uid 0 0 in
        cache_store m (slot_of m.op_mask k') k' a
      end;
      r
    end
  end
  else begin
    Kpt_obs.incr c_spill;
    match Hashtbl.find_opt m.op_spill (op_not, a.uid, 0, 0) with
    | Some r ->
        Kpt_obs.incr c_hit;
        r
    | None ->
        Kpt_obs.incr c_miss;
        let r = mk m a.level (not_ m a.low) (not_ m a.high) in
        Hashtbl.replace m.op_spill (op_not, a.uid, 0, 0) r;
        Hashtbl.replace m.op_spill (op_not, r.uid, 0, 0) a;
        r
  end

let xor m a b =
  let terminal a b =
    if a == b then Some m.t_false
    else if is_false a then Some b
    else if is_false b then Some a
    else if is_true a then Some (not_ m b)
    else if is_true b then Some (not_ m a)
    else None
  in
  bin m ~op:op_xor ~commutative:true ~terminal a b

let imp m a b =
  let terminal a b =
    if is_false a || is_true b then Some m.t_true
    else if is_true a then Some b
    else if a == b then Some m.t_true
    else if is_false b then Some (not_ m a)
    else None
  in
  bin m ~op:op_imp ~commutative:false ~terminal a b

let iff m a b =
  let terminal a b =
    if a == b then Some m.t_true
    else if is_true a then Some b
    else if is_true b then Some a
    else if is_false a then Some (not_ m b)
    else if is_false b then Some (not_ m a)
    else None
  in
  bin m ~op:op_iff ~commutative:true ~terminal a b

let rec ite m c a b =
  if is_true c then a
  else if is_false c then b
  else if a == b then a
  else if is_true a && is_false b then c
  else
    let compute () =
      let lvl = min c.level (min a.level b.level) in
      let cof n = if n.level = lvl then (n.low, n.high) else (n, n) in
      let c0, c1 = cof c and a0, a1 = cof a and b0, b1 = cof b in
      mk m lvl (ite m c0 a0 b0) (ite m c1 a1 b1)
    in
    if op_packs c.uid a.uid b.uid then begin
      let k = op_key op_ite c.uid a.uid b.uid in
      let i = slot_of m.op_mask k in
      if m.op_key.(i) = k then begin
        Kpt_obs.incr c_hit;
        m.op_res.(i)
      end
      else begin
        Kpt_obs.incr c_miss;
        let r = compute () in
        cache_store m i k r;
        r
      end
    end
    else begin
      Kpt_obs.incr c_spill;
      match Hashtbl.find_opt m.op_spill (op_ite, c.uid, a.uid, b.uid) with
      | Some r ->
          Kpt_obs.incr c_hit;
          r
      | None ->
          Kpt_obs.incr c_miss;
          let r = compute () in
          Hashtbl.replace m.op_spill (op_ite, c.uid, a.uid, b.uid) r;
          r
    end

(* n-ary conjunction/disjunction as balanced-tree folds: pairing operands
   keeps the intermediate BDDs small compared to a linear [fold_left]
   (which carries one ever-growing accumulator through the whole list). *)
let balanced_fold op unit ps =
  match ps with
  | [] -> unit
  | [ p ] -> p
  | ps ->
      let a = Array.of_list ps in
      let n = ref (Array.length a) in
      while !n > 1 do
        let k = !n in
        for i = 0 to (k / 2) - 1 do
          a.(i) <- op a.(2 * i) a.((2 * i) + 1)
        done;
        if k land 1 = 1 then a.(k / 2) <- a.(k - 1);
        n := (k + 1) / 2
      done;
      a.(0)

let conj m ps = balanced_fold (and_ m) (tru m) ps
let disj m ps = balanced_fold (or_ m) (fls m) ps
let implies m a b = is_true (imp m a b)

let restrict m root i polarity =
  let memo = Hashtbl.create 64 in
  let rec go n =
    if n.level > i then n
    else if n.level = i then if polarity then n.high else n.low
    else
      match Hashtbl.find_opt memo n.uid with
      | Some r -> r
      | None ->
          let r = mk m n.level (go n.low) (go n.high) in
          Hashtbl.add memo n.uid r;
          r
  in
  go root

let rec drop_below level = function
  | v :: rest when v < level -> drop_below level rest
  | vs -> vs

(* Quantification.  The memo is keyed on the node uid only: after dropping
   variables below the node's level, the remaining variable list is a
   function of the node's level alone (the input list is sorted). *)
let quant m ~ex vars root =
  let combine = if ex then or_ m else and_ m in
  let memo = Hashtbl.create 256 in
  let rec go vs n =
    if is_leaf n then n
    else
      let vs = drop_below n.level vs in
      match vs with
      | [] -> n
      | v :: rest -> (
          match Hashtbl.find_opt memo n.uid with
          | Some r -> r
          | None ->
              let r =
                if v = n.level then combine (go rest n.low) (go rest n.high)
                else mk m n.level (go vs n.low) (go vs n.high)
              in
              Hashtbl.add memo n.uid r;
              r)
  in
  go (List.sort_uniq compare vars) root

let exists m vars root = quant m ~ex:true vars root
let forall m vars root = quant m ~ex:false vars root

let and_exists m vars a b =
  let sorted = List.sort_uniq compare vars in
  let memo = Hashtbl.create 256 in
  let rec go vs a b =
    if is_false a || is_false b then m.t_false
    else if is_true a then quant m ~ex:true vs b
    else if is_true b then quant m ~ex:true vs a
    else
      let lvl = min a.level b.level in
      let vs = drop_below lvl vs in
      match vs with
      | [] -> and_ m a b
      | v :: rest -> (
          let key = if a.uid > b.uid then (b.uid, a.uid) else (a.uid, b.uid) in
          match Hashtbl.find_opt memo key with
          | Some r -> r
          | None ->
              let a0, a1 = if a.level = lvl then (a.low, a.high) else (a, a) in
              let b0, b1 = if b.level = lvl then (b.low, b.high) else (b, b) in
              let r =
                if v = lvl then or_ m (go rest a0 b0) (go rest a1 b1)
                else mk m lvl (go vs a0 b0) (go vs a1 b1)
              in
              Hashtbl.add memo key r;
              r)
  in
  go sorted a b

let rename m f root =
  let memo = Hashtbl.create 256 in
  let rec go n =
    if is_leaf n then n
    else
      match Hashtbl.find_opt memo n.uid with
      | Some r -> r
      | None ->
          let r = mk m (f n.level) (go n.low) (go n.high) in
          Hashtbl.add memo n.uid r;
          r
  in
  go root

let support _m root =
  let seen = Hashtbl.create 256 in
  let levels = Hashtbl.create 64 in
  let rec go n =
    if (not (is_leaf n)) && not (Hashtbl.mem seen n.uid) then begin
      Hashtbl.add seen n.uid ();
      Hashtbl.replace levels n.level ();
      go n.low;
      go n.high
    end
  in
  go root;
  Hashtbl.fold (fun l () acc -> l :: acc) levels [] |> List.sort compare

(* Early-exit dependence test: stop at the first node on level [i]; prune
   subtrees rooted strictly below [i] (levels only grow downward), and
   never materialise the support list. *)
exception Found

let depends_on _m root i =
  let seen = Hashtbl.create 64 in
  let rec go n =
    if n.level = i then raise Found
    else if n.level < i && not (Hashtbl.mem seen n.uid) then begin
      Hashtbl.add seen n.uid ();
      go n.low;
      go n.high
    end
  in
  match go root with () -> false | exception Found -> true

let size _m root =
  let seen = Hashtbl.create 256 in
  let rec go n =
    if (not (is_leaf n)) && not (Hashtbl.mem seen n.uid) then begin
      Hashtbl.add seen n.uid ();
      go n.low;
      go n.high
    end
  in
  go root;
  Hashtbl.length seen

let node_count m = m.next_uid

(* Exact model counting: the classic per-node recurrence, except each
   count is an exact big integer — a float accumulator silently rounds
   above 2^53 assignments and overflows to infinity near 1024 variables,
   both well inside the scaling harness's reach. *)
let sat_count_exact _m ~nvars root =
  let memo = Hashtbl.create 256 in
  let lvl n = if is_leaf n then nvars else n.level in
  let rec go n =
    if is_false n then Bigcount.zero
    else if is_true n then Bigcount.one
    else
      match Hashtbl.find_opt memo n.uid with
      | Some c -> c
      | None ->
          let weight child = Bigcount.shift_left (go child) (lvl child - n.level - 1) in
          let c = Bigcount.add (weight n.low) (weight n.high) in
          Hashtbl.add memo n.uid c;
          c
  in
  Bigcount.shift_left (go root) (lvl root)

let sat_count m ~nvars root = Bigcount.to_float (sat_count_exact m ~nvars root)

let any_sat _m root =
  if is_false root then raise Not_found;
  let rec go acc n =
    if is_leaf n then List.rev acc
    else if is_false n.low then go ((n.level, true) :: acc) n.high
    else go ((n.level, false) :: acc) n.low
  in
  go [] root

let iter_sat _m ~vars root f =
  let vars = List.sort_uniq compare vars in
  let asg = Hashtbl.create 16 in
  let lookup i = Hashtbl.find asg i in
  let rec go vs n =
    if is_false n then ()
    else
      match vs with
      | [] ->
          assert (is_true n);
          f lookup
      | v :: rest ->
          assert (n.level >= v);
          let branch b =
            Hashtbl.replace asg v b;
            let n' = if n.level = v then if b then n.high else n.low else n in
            go rest n'
          in
          branch false;
          branch true;
          Hashtbl.remove asg v
  in
  go vars root

let live_count m = m.uq_count + Hashtbl.length m.uq_spill + 2

type stats = {
  nodes_created : int;
  live_nodes : int;
  unique_slots : int;
  unique_load : float;
  spill_nodes : int;
  cache_slots : int;
}

let stats m =
  {
    nodes_created = m.next_uid;
    live_nodes = live_count m;
    unique_slots = Array.length m.uq_key;
    unique_load = float_of_int m.uq_count /. float_of_int (Array.length m.uq_key);
    spill_nodes = Hashtbl.length m.uq_spill;
    cache_slots = m.op_mask + 1;
  }

let gc m ~roots =
  clear_caches m;
  let keep = Hashtbl.create (max 16 m.uq_count) in
  let rec mark n =
    if (not (is_leaf n)) && not (Hashtbl.mem keep n.uid) then begin
      Hashtbl.add keep n.uid n;
      mark n.low;
      mark n.high
    end
  in
  List.iter mark roots;
  let count = Hashtbl.length keep in
  let slots = pow2_at_least (max 16 (4 * count)) 16 in
  let mask = slots - 1 in
  m.uq_key <- Array.make slots 0;
  m.uq_node <- Array.make slots m.t_false;
  m.uq_count <- 0;
  Hashtbl.reset m.uq_spill;
  Hashtbl.iter
    (fun _ n ->
      let lo = n.low.uid and hi = n.high.uid in
      if uq_packs n.level lo hi then begin
        uq_place m.uq_key m.uq_node mask (uq_key n.level lo hi) n;
        m.uq_count <- m.uq_count + 1
      end
      else Hashtbl.add m.uq_spill (n.level, lo, hi) n)
    keep

let rec eval n valuation =
  if is_true n then true
  else if is_false n then false
  else if valuation n.level then eval n.high valuation
  else eval n.low valuation

let pp _m fmt root =
  let rec go fmt n =
    if is_true n then Format.fprintf fmt "T"
    else if is_false n then Format.fprintf fmt "F"
    else Format.fprintf fmt "(v%d ? %a : %a)" n.level go n.high go n.low
  in
  go fmt root
