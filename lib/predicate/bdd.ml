(* Hash-consed ROBDDs with dynamic variable ordering.

   Nodes carry a {e variable index}; the manager carries the order as a
   pair of permutation arrays ([perm] : var → level, [invperm] : level →
   var).  Canonicity invariant: no node has [low == high], every
   (var, low, high) triple is hash-consed, and on every path the levels
   [perm.(var)] strictly increase — so semantic equality is physical
   equality {e in whatever order the manager currently has}.

   Reordering (Rudell sifting over adjacent-level swaps) mutates nodes in
   place: a swapped node keeps its [uid] and its semantics, only its
   [var]/[low]/[high] fields are rewritten.  External references held
   across a reorder therefore stay valid, and the op-cache — which is
   keyed on uids and caches {e functions of functions} — stays correct
   without being flushed. *)

let leaf_level = max_int

type t = { uid : int; mutable var : int; mutable low : t; mutable high : t }

(* Engine counters (per-context, aggregated over every manager).  An
   increment is a single field write, so the hot paths pay for them
   unconditionally; `kpt stats` and the bench harness snapshot them. *)
let c_hit = Kpt_obs.counter "bdd.op_cache.hits"
let c_miss = Kpt_obs.counter "bdd.op_cache.misses"
let c_store = Kpt_obs.counter "bdd.op_cache.stores"
let c_op_grow = Kpt_obs.counter "bdd.op_cache.grows"
let c_spill = Kpt_obs.counter "bdd.op_cache.spills"
let c_node = Kpt_obs.counter "bdd.nodes.created"
let c_peak = Kpt_obs.counter "bdd.nodes.peak"
let c_uq_grow = Kpt_obs.counter "bdd.unique.grows"
let c_ro_runs = Kpt_obs.counter "bdd.reorder.runs"
let c_ro_swaps = Kpt_obs.counter "bdd.reorder.swaps"
let c_ro_saved = Kpt_obs.counter "bdd.reorder.nodes_saved"
let c_gc_runs = Kpt_obs.counter "bdd.gc.runs"
let c_gc_freed = Kpt_obs.counter "bdd.gc.freed"

(* Both manager tables are packed: each entry's key is one native int
   encoding the operands bit-by-bit, stored next to its payload in two
   parallel arrays.  Packing is exact — two keys are equal iff the
   operand pairs are equal — so a probe is a single load-and-compare and
   allocates nothing.

   The unique table is split into one packed subtable {e per variable}
   (CUDD's layout): an adjacent-level swap then only touches the two
   subtables of the swapped variables, leaving every other node where it
   is.  Within a subtable the key packs the child uids (low:20 | high:20
   bits); key 0 would mean (false, false) children, i.e. a node with
   [low == high], which [mk] never stores — so 0 is free as the
   empty-slot sentinel.  Uids beyond 2^20 take a [Hashtbl] fallback path
   keyed on the child pair: exactness is preserved at any size, only the
   packed fast path is bounded.

   The operation cache is CUDD-style direct-mapped: collisions overwrite
   (the cache is lossy — dropping an entry only costs a recomputation). *)
type subtable = {
  mutable s_count : int; (* entries in the packed arrays *)
  mutable s_key : int array; (* 0 = empty slot *)
  mutable s_node : t array;
  s_spill : (int * int, t) Hashtbl.t; (* child uids beyond packing *)
}

type manager = {
  mutable next_uid : int;
  mutable nvars : int; (* registered variables: 0 .. nvars-1 *)
  mutable perm : int array; (* var → level (length ≥ nvars) *)
  mutable invperm : int array; (* level → var *)
  mutable subs : subtable array; (* indexed by var *)
  mutable live : int; (* total unique-table entries (packed + spill) *)
  op_cap : int; (* maximum op-cache slot count (power of two) *)
  mutable op_stores : int; (* misses stored since the last grow/clear *)
  mutable op_mask : int;
  mutable op_key : int array; (* 0 = empty slot *)
  mutable op_res : t array;
  op_spill : (int * int * int * int, t) Hashtbl.t; (* uids beyond packing *)
  t_true : t;
  t_false : t;
  (* dynamic-reordering state *)
  mutable auto_reorder : bool;
  mutable reorder_threshold : int; (* next_uid that arms [reorder_pending] *)
  mutable reorder_pending : bool;
  mutable reordered : bool; (* perm has ever left the identity *)
  mutable op_depth : int; (* public operations in flight *)
  mutable ro_streak : int; (* consecutive abort-and-retry restarts *)
  mutable in_reorder : bool;
  mutable ro_mark : int; (* next_uid at reorder entry; max_int outside *)
  mutable ro_excess : int; (* logically dead nodes still in the table *)
  ro_lrc : (int, int) Hashtbl.t; (* uid → logical refcount (0 = dead) *)
  ro_prc : (int, int) Hashtbl.t; (* transient uid → physical refcount *)
}

let uid_limit = 1 lsl 20
let sub_key lo hi = (lo lsl 20) lor hi
let sub_packs lo hi = lo < uid_limit && hi < uid_limit

(* Packed op-cache key: tag:3 | x:20 | y:20 | z:20 bits.  Zero would need
   tag = op_and with x = y = z = 0, i.e. and(false, false) — a terminal
   case that is never cached, so 0 is free as the empty-slot sentinel. *)
let op_key tag x y z = (((((tag lsl 20) lor x) lsl 20) lor y) lsl 20) lor z
let op_packs x y z = x < uid_limit && y < uid_limit && z < uid_limit

let make_leaf uid =
  let rec n = { uid; var = leaf_level; low = n; high = n } in
  n

let rec pow2_at_least k n = if n >= k then n else pow2_at_least k (n * 2)

(* The op-cache starts at a few thousand slots and quadruples on demand
   (up to [op_cap]).  The floor used to be 1024, which made every
   non-trivial manager grow twice on its way to the default cap — tens of
   thousands of grows over a bench run.  4096 keeps the up-front cost of
   a short-lived manager at a few dozen KB while leaving at most one
   geometric step to the default cap. *)
let initial_slots = 4096
let initial_sub_slots = 16
let default_reorder_threshold = 1 lsl 16

let fresh_subtable dummy =
  {
    s_count = 0;
    s_key = Array.make initial_sub_slots 0;
    s_node = Array.make initial_sub_slots dummy;
    s_spill = Hashtbl.create 8;
  }

let create ?(unique_size = 1 lsl 11) ?(cache_size = 1 lsl 14) ?(reorder = false) () =
  ignore unique_size;
  (* kept for API compatibility: subtables size themselves *)
  let t_false = make_leaf 0 in
  let cap = pow2_at_least (max 1 cache_size) 1 in
  let slots = min initial_slots cap in
  {
    next_uid = 2;
    nvars = 0;
    perm = Array.make 16 0;
    invperm = Array.make 16 0;
    subs = Array.make 16 (fresh_subtable t_false);
    live = 0;
    op_cap = cap;
    op_stores = 0;
    op_mask = slots - 1;
    op_key = Array.make slots 0;
    op_res = Array.make slots t_false;
    op_spill = Hashtbl.create 16;
    t_true = make_leaf 1;
    t_false;
    auto_reorder = reorder;
    reorder_threshold = default_reorder_threshold;
    reorder_pending = false;
    reordered = false;
    op_depth = 0;
    ro_streak = 0;
    in_reorder = false;
    ro_mark = max_int;
    ro_excess = 0;
    ro_lrc = Hashtbl.create 256;
    ro_prc = Hashtbl.create 256;
  }

(* Register variables up to [v]: each newcomer takes the next free level,
   so a fresh variable always enters at the bottom of the current order
   (past reorders permute only the variables that existed then). *)
let ensure_var m v =
  if v >= m.nvars then begin
    if v >= Array.length m.perm then begin
      let cap = pow2_at_least (v + 1) (Array.length m.perm) in
      let grow a fill = Array.init cap (fun i -> if i < Array.length a then a.(i) else fill) in
      m.perm <- grow m.perm 0;
      m.invperm <- grow m.invperm 0;
      let subs = Array.make cap m.subs.(0) in
      Array.blit m.subs 0 subs 0 (Array.length m.subs);
      m.subs <- subs
    end;
    for k = m.nvars to v do
      m.perm.(k) <- k;
      m.invperm.(k) <- k;
      m.subs.(k) <- fresh_subtable m.t_false
    done;
    m.nvars <- v + 1
  end

let clear_caches m =
  m.op_stores <- 0;
  Array.fill m.op_key 0 (Array.length m.op_key) 0;
  (* drop result pointers too so cleared entries don't keep nodes alive *)
  Array.fill m.op_res 0 (Array.length m.op_res) m.t_false;
  Hashtbl.reset m.op_spill

(* Fibonacci-style multiplicative mixing of a packed key. *)
let slot_of mask key =
  let h = (key lxor (key lsr 29)) * 0x9E3779B1 in
  (h lxor (h lsr 17)) land mask

let grow_cache m =
  Kpt_obs.incr c_op_grow;
  let slots = min (4 * (m.op_mask + 1)) m.op_cap in
  let keys = Array.make slots 0 in
  let res = Array.make slots m.t_false in
  (* rehash the live entries so growing never loses warmth *)
  let mask = slots - 1 in
  for i = 0 to m.op_mask do
    let k = m.op_key.(i) in
    if k <> 0 then begin
      let j = slot_of mask k in
      keys.(j) <- k;
      res.(j) <- m.op_res.(i)
    end
  done;
  m.op_stores <- 0;
  m.op_mask <- mask;
  m.op_key <- keys;
  m.op_res <- res

let tru m = m.t_true
let fls m = m.t_false
let uid n = n.uid
let equal a b = a == b
let is_leaf n = n.var = leaf_level
let is_true n = n.var = leaf_level && n.uid = 1
let is_false n = n.var = leaf_level && n.uid = 0

(* Level (position in the order) of a node's variable; leaves sit below
   everything. *)
let pos m n = if n.var = leaf_level then max_int else Array.unsafe_get m.perm n.var

(* Level of a variable index that may not be registered yet: unregistered
   variables conceptually extend the order in index order. *)
let posv m v = if v < m.nvars then m.perm.(v) else v

(* Place a node with packed child key [k] into subtable arrays known to
   have a free slot. *)
let sub_place keys nodes mask k n =
  let i = ref (slot_of mask k) in
  while keys.(!i) <> 0 do
    i := (!i + 1) land mask
  done;
  keys.(!i) <- k;
  nodes.(!i) <- n

let grow_sub m sub =
  Kpt_obs.incr c_uq_grow;
  let slots = 2 * Array.length sub.s_key in
  let mask = slots - 1 in
  let keys = Array.make slots 0 in
  let nodes = Array.make slots m.t_false in
  for i = 0 to Array.length sub.s_key - 1 do
    if sub.s_key.(i) <> 0 then sub_place keys nodes mask sub.s_key.(i) sub.s_node.(i)
  done;
  sub.s_key <- keys;
  sub.s_node <- nodes

(* Insert an already-built node into its variable's subtable (used by the
   swap and by [gc], where the node is known not to be present). *)
let insert_node m n =
  let sub = m.subs.(n.var) in
  let lo = n.low.uid and hi = n.high.uid in
  if sub_packs lo hi then begin
    if 2 * (sub.s_count + 1) > Array.length sub.s_key then grow_sub m sub;
    sub_place sub.s_key sub.s_node (Array.length sub.s_key - 1) (sub_key lo hi) n;
    sub.s_count <- sub.s_count + 1
  end
  else Hashtbl.replace sub.s_spill (lo, hi) n;
  m.live <- m.live + 1

(* Delete a packed entry (linear probing: the canonical backward-shift,
   so later probe chains stay unbroken — no tombstones). *)
let sub_delete_packed sub k =
  let mask = Array.length sub.s_key - 1 in
  let i = ref (slot_of mask k) in
  while sub.s_key.(!i) <> 0 && sub.s_key.(!i) <> k do
    i := (!i + 1) land mask
  done;
  if sub.s_key.(!i) = k then begin
    sub.s_count <- sub.s_count - 1;
    let i = ref !i and j = ref !i in
    let running = ref true in
    while !running do
      j := (!j + 1) land mask;
      let kj = sub.s_key.(!j) in
      if kj = 0 then running := false
      else begin
        let h = slot_of mask kj in
        (* move [j]'s entry into the hole at [i] unless its home lies
           cyclically within (i, j] — then it must stay put *)
        let stays =
          if !j > !i then h > !i && h <= !j else h > !i || h <= !j
        in
        if not stays then begin
          sub.s_key.(!i) <- kj;
          sub.s_node.(!i) <- sub.s_node.(!j);
          i := !j
        end
      end
    done;
    sub.s_key.(!i) <- 0
  end

let remove_node m n =
  let sub = m.subs.(n.var) in
  let lo = n.low.uid and hi = n.high.uid in
  if sub_packs lo hi then sub_delete_packed sub (sub_key lo hi)
  else Hashtbl.remove sub.s_spill (lo, hi);
  m.live <- m.live - 1

let iter_table m f =
  for v = 0 to m.nvars - 1 do
    let sub = m.subs.(v) in
    Array.iteri (fun i k -> if k <> 0 then f sub.s_node.(i)) sub.s_key;
    Hashtbl.iter (fun _ n -> f n) sub.s_spill
  done

(* ---- garbage collection at reorder boundaries -----------------------------

   Between reorders nothing is ever freed: the unique table pins every
   node it holds, so the dead intermediates of a fixpoint iteration pile
   up, count against node budgets, and — worse — get dragged through
   every level swap of every later sift.  The manager cannot see which
   handles user code still holds, but the runtime's collector can: move
   every interior node into a weak set, empty the unique table and the op
   cache (whose result pointers would otherwise pin dead trees), force a
   major collection, and re-insert the survivors.  A node strongly
   reachable anywhere — an external handle, a Space/Program cache, the
   operands of an aborted in-flight operation — survives together with
   its cofactors, because node fields are strong references; an
   unreachable tree is reclaimed and its weak slots empty out.  Survivors
   return with uid and fields untouched, so [mk] can never mint a
   duplicate of a handle that is still alive: physical equality keeps
   meaning semantic equality.  Collected uids simply retire ([next_uid]
   never reuses them), so stale uid-keyed memo entries cannot ghost-match
   a later node. *)

module Weak_nodes = Weak.Make (struct
  type nonrec t = t

  let equal a b = a == b
  let hash n = n.uid
end)

let collect m =
  Kpt_obs.incr c_gc_runs;
  let before = m.live in
  let stash = Weak_nodes.create (2 * before + 64) in
  iter_table m (fun n -> Weak_nodes.add stash n);
  for v = 0 to m.nvars - 1 do
    m.subs.(v) <- fresh_subtable m.t_false
  done;
  m.live <- 0;
  clear_caches m;
  Gc.full_major ();
  Weak_nodes.iter (fun n -> insert_node m n) stash;
  if m.live < before then Kpt_obs.add c_gc_freed (before - m.live)

(* ---- in-reorder reference counting ----------------------------------------

   A sifting pass restructures nodes in place; the displaced children can
   become garbage, and without liveness information [m.live] would only
   ever grow — drowning the very size signal sifting steers by, and
   bloating the table with every explored position.  The manager cannot
   see external handles, so liveness is approximated with two counts kept
   only while a reorder is running:

   - a {e logical} count for every node — the number of live parents,
     seeded by an in-degree sweep at reorder entry, with in-degree-0
     nodes treated as roots (they may be external handles) and given one
     implicit, unreleasable reference.  A node whose logical count drops
     to 0 is a {e zombie}: still in the table (it might be an external
     handle after all), but subtracted from the steering metric
     [ro_size], with the release cascading into its children.  A later
     retain revives it, cascading back.  Errors here only blur the
     heuristic, never correctness.

   - a {e physical} count for transients (uid ≥ [ro_mark]) only — the
     number of node fields pointing at them, zombie parents included.  No
     user code runs during a reorder, so a transient cannot have escaped:
     when its physical count returns to 0, nothing in the process can
     reach it and it is safe to evict from the table and recycle.  A
     transient referenced only by a zombie keeps a physical reference and
     survives — the zombie may be externally alive, and evicting the
     child would let [mk] mint a duplicate and break canonicity.

   For transients, logical ≤ physical (each field-reference counts
   logically only while its owner is alive), so eviction implies the
   node was already logically dead. *)

let transient m n = n.uid >= m.ro_mark && n.var <> leaf_level

(* The steering metric: table entries that are believed reachable. *)
let ro_size m = m.live - m.ro_excess

let rec l_retain m n =
  if n.var <> leaf_level then
    match Hashtbl.find_opt m.ro_lrc n.uid with
    | None ->
        (* a fresh transient: its own child references are already
           active (counted at creation), no cascade *)
        Hashtbl.replace m.ro_lrc n.uid 1
    | Some 0 ->
        m.ro_excess <- m.ro_excess - 1;
        Hashtbl.replace m.ro_lrc n.uid 1;
        l_retain m n.low;
        l_retain m n.high
    | Some c -> Hashtbl.replace m.ro_lrc n.uid (c + 1)

let rec l_release m n =
  if n.var <> leaf_level then
    match Hashtbl.find_opt m.ro_lrc n.uid with
    | Some 1 ->
        Hashtbl.replace m.ro_lrc n.uid 0;
        m.ro_excess <- m.ro_excess + 1;
        l_release m n.low;
        l_release m n.high
    | Some c when c > 1 -> Hashtbl.replace m.ro_lrc n.uid (c - 1)
    | _ -> () (* roots bottom out at their implicit reference *)

let p_retain m n =
  if transient m n then
    Hashtbl.replace m.ro_prc n.uid
      (1 + (match Hashtbl.find_opt m.ro_prc n.uid with Some c -> c | None -> 0))

let rec p_release m n =
  if transient m n then
    match Hashtbl.find_opt m.ro_prc n.uid with
    | Some c when c > 1 -> Hashtbl.replace m.ro_prc n.uid (c - 1)
    | _ ->
        (* physically unreferenced — nothing in the process can reach a
           node born mid-reorder, so evict and recycle *)
        Hashtbl.remove m.ro_prc n.uid;
        let refs_active =
          match Hashtbl.find_opt m.ro_lrc n.uid with
          | Some 0 ->
              m.ro_excess <- m.ro_excess - 1;
              false
          | _ -> true
        in
        Hashtbl.remove m.ro_lrc n.uid;
        remove_node m n;
        if refs_active then begin
          l_release m n.low;
          l_release m n.high
        end;
        p_release m n.low;
        p_release m n.high

(* Stores into a stale index after a mid-recursion grow land in a wrong
   slot of the larger arrays; that is harmless — a hit checks the exact
   packed key, so a misplaced entry can only be returned for its own key. *)
let cache_store m i k r =
  Kpt_obs.incr c_store;
  m.op_stores <- m.op_stores + 1;
  if m.op_stores > (m.op_mask + 1) / 4 && m.op_mask + 1 < m.op_cap then grow_cache m;
  m.op_key.(i) <- k;
  m.op_res.(i) <- r

(* Raised by the allocator when the table outgrows the reorder threshold
   in the middle of a public operation: the recursion's cofactor state
   assumes a frozen order, so the operation is unwound to its outermost
   entry, the manager reorders there, and the operation retries — the
   abort-and-retry scheme of the classic packages.  Everything already
   computed survives: op-cache entries are uid-keyed and denotation-
   stable, and per-call memo tables are rebuilt by the retry. *)
exception Restart_for_reorder

let fresh_node m var low high =
  let n = { uid = m.next_uid; var; low; high } in
  m.next_uid <- m.next_uid + 1;
  (* a node born mid-reorder references its children for rc purposes *)
  if m.in_reorder then begin
    l_retain m low;
    l_retain m high;
    p_retain m low;
    p_retain m high
  end;
  Kpt_obs.incr c_node;
  Kpt_obs.record_max c_peak m.next_uid;
  if m.auto_reorder && (not m.in_reorder) && m.live + 2 >= m.reorder_threshold then begin
    m.reorder_pending <- true;
    (* mid-operation: unwind to the outermost public entry and retry
       there (the node just built is discarded before table insertion,
       so the manager stays consistent) *)
    if m.op_depth > 0 then raise Restart_for_reorder
  end;
  (* Amortised budget check: the node ceiling (and, between fixpoint
     rounds, the deadline) must bite even inside one pathological apply,
     but a per-node check would tax every allocation — every 4096 nodes
     keeps the overhead unmeasurable.  The ceiling is checked against the
     {e live} table size, not the lifetime allocation count: a reorder
     evicts its own transients, and the whole point of sifting under a
     budget is that space reclaimed no longer counts against it.
     Suspended during a reorder: the manager is mid-surgery and the
     caller gets checked again on the very next allocations. *)
  if m.next_uid land 4095 = 0 && not m.in_reorder then Engine.check_nodes (m.live + 2);
  n

let mk m var low high =
  if low == high then low
  else begin
    ensure_var m var;
    assert (pos m low > m.perm.(var) && pos m high > m.perm.(var));
    let sub = m.subs.(var) in
    let lo = low.uid and hi = high.uid in
    if sub_packs lo hi then begin
      let k = sub_key lo hi in
      let mask = Array.length sub.s_key - 1 in
      let i = ref (slot_of mask k) in
      while sub.s_key.(!i) <> 0 && sub.s_key.(!i) <> k do
        i := (!i + 1) land mask
      done;
      if sub.s_key.(!i) = k then sub.s_node.(!i)
      else begin
        let n = fresh_node m var low high in
        sub.s_key.(!i) <- k;
        sub.s_node.(!i) <- n;
        sub.s_count <- sub.s_count + 1;
        m.live <- m.live + 1;
        if 2 * sub.s_count > mask + 1 then grow_sub m sub;
        n
      end
    end
    else begin
      (* beyond the packed range: exact spill table, same canonicity *)
      let key = (lo, hi) in
      match Hashtbl.find_opt sub.s_spill key with
      | Some n -> n
      | None ->
          let n = fresh_node m var low high in
          Hashtbl.add sub.s_spill key n;
          m.live <- m.live + 1;
          n
    end
  end

(* ---- dynamic reordering -------------------------------------------------- *)

(* Swap the variables at adjacent levels [l] and [l+1] in place (Rudell).
   Let u = invperm l, v = invperm (l+1).  v's nodes are untouched (their
   children lie strictly below level l+1 either way).  A u-node
   independent of v just moves down one level, keeping its triple.  A
   u-node f with a v-child is rewritten through the Shannon identity

     f = u ? (v ? f11 : f10) : (v ? f01 : f00)
       = v ? (u ? f11 : f01) : (u ? f10 : f00)

   mutating f's fields so every external reference to f keeps denoting
   the same boolean function.  The rewrite cannot collapse (a dependent
   node has f00 ≠ f01 or f10 ≠ f11 on the side where the v-child sits)
   and cannot collide with an existing v-node or another rewritten one
   (all denote pairwise distinct functions before the swap, and the swap
   changes no denotation) — so canonicity is preserved. *)
let swap_levels m l =
  Kpt_obs.incr c_ro_swaps;
  let u = m.invperm.(l) and v = m.invperm.(l + 1) in
  let su = m.subs.(u) in
  (* detach u's nodes *)
  let nodes = ref [] in
  let count = ref 0 in
  Array.iteri
    (fun i k ->
      if k <> 0 then begin
        nodes := su.s_node.(i) :: !nodes;
        incr count
      end)
    su.s_key;
  Hashtbl.iter
    (fun _ n ->
      nodes := n :: !nodes;
      incr count)
    su.s_spill;
  let slots = pow2_at_least (max initial_sub_slots (2 * !count)) initial_sub_slots in
  su.s_count <- 0;
  su.s_key <- Array.make slots 0;
  su.s_node <- Array.make slots m.t_false;
  Hashtbl.reset su.s_spill;
  m.live <- m.live - !count;
  (* flip the order *)
  m.invperm.(l) <- v;
  m.invperm.(l + 1) <- u;
  m.perm.(u) <- l + 1;
  m.perm.(v) <- l;
  m.reordered <- true;
  (* re-register the independent movers first so the dependents' cofactor
     lookups can share them, then rewrite the dependents *)
  let dependents =
    List.filter
      (fun n ->
        if n.low.var = v || n.high.var = v then true
        else begin
          insert_node m n;
          false
        end)
      !nodes
  in
  List.iter
    (fun f ->
      let f0 = f.low and f1 = f.high in
      let f00, f01 = if f0.var = v then (f0.low, f0.high) else (f0, f0) in
      let f10, f11 = if f1.var = v then (f1.low, f1.high) else (f1, f1) in
      let nl = mk m u f00 f10 in
      let nh = mk m u f01 f11 in
      assert (nl != nh);
      (* retain the new children before releasing the old ones: when a
         cofactor is reused ([nl == f0]) the count must never dip to 0.
         Logical references belong to live parents only — a zombie's
         field changes move physical counts alone. *)
      let f_alive =
        match Hashtbl.find_opt m.ro_lrc f.uid with Some 0 -> false | _ -> true
      in
      if f_alive then begin
        l_retain m nl;
        l_retain m nh
      end;
      p_retain m nl;
      p_retain m nh;
      f.var <- v;
      f.low <- nl;
      f.high <- nh;
      insert_node m f;
      if f_alive then begin
        l_release m f0;
        l_release m f1
      end;
      p_release m f0;
      p_release m f1)
    dependents

(* Sifting moves variables in {e pair groups} (2k, 2k+1): the convention
   upstairs interleaves each state bit's current (even) and next (odd)
   copy, and [Space.to_next]/[to_current] need the current→next bit map
   to stay monotone in the order.  Keeping each pair adjacent — the even
   variable directly above its odd twin — makes every such rename a
   level-shift by one, monotone by construction. *)
type sift_state = {
  gvars : int array array; (* group → member vars, top first *)
  gorder : int array; (* position → group *)
  gpos : int array; (* group → position *)
}

let group_size st g = Array.length st.gvars.(g)

let level_offset st p =
  let off = ref 0 in
  for q = 0 to p - 1 do
    off := !off + group_size st st.gorder.(q)
  done;
  !off

(* Swap the groups at positions [p] and [p+1]: bubble each level of the
   lower group up past the upper group, preserving both internal orders. *)
let swap_adjacent_groups m st p =
  let gx = st.gorder.(p) and gy = st.gorder.(p + 1) in
  let s1 = group_size st gx and s2 = group_size st gy in
  let base = level_offset st p in
  for k = 0 to s2 - 1 do
    for j = 1 to s1 do
      swap_levels m (base + s1 + k - j)
    done
  done;
  st.gorder.(p) <- gy;
  st.gorder.(p + 1) <- gx;
  st.gpos.(gy) <- p;
  st.gpos.(gx) <- p + 1

let group_nodes m st g =
  Array.fold_left
    (fun acc v -> acc + m.subs.(v).s_count + Hashtbl.length m.subs.(v).s_spill)
    0 st.gvars.(g)

(* Sift one group: walk it to the nearer edge and then across to the
   other, tracking the total live-node count at each position, then park
   it at the best position seen.  A direction is abandoned early when the
   table grows past [limit] — the classic growth-abort that keeps a bad
   excursion from flooding the table. *)
let sift_group m st g =
  let ngroups = Array.length st.gorder in
  let p0 = st.gpos.(g) in
  let best_size = ref (ro_size m) and best_pos = ref p0 in
  let limit = ro_size m + (ro_size m / 5) + 4096 in
  let record () =
    if ro_size m < !best_size then begin
      best_size := ro_size m;
      best_pos := st.gpos.(g)
    end
  in
  let down () =
    while st.gpos.(g) < ngroups - 1 && ro_size m <= limit do
      swap_adjacent_groups m st st.gpos.(g);
      record ()
    done
  in
  let up () =
    while st.gpos.(g) > 0 && ro_size m <= limit do
      swap_adjacent_groups m st (st.gpos.(g) - 1);
      record ()
    done
  in
  if p0 >= ngroups / 2 then begin
    down ();
    up ()
  end
  else begin
    up ();
    down ()
  end;
  while st.gpos.(g) < !best_pos do
    swap_adjacent_groups m st st.gpos.(g)
  done;
  while st.gpos.(g) > !best_pos do
    swap_adjacent_groups m st (st.gpos.(g) - 1)
  done

let reorder_now m =
  m.reorder_pending <- false;
  if m.nvars > 2 then begin
    Kpt_obs.incr c_ro_runs;
    let before = m.live in
    (* entry sweep: sift only what is actually reachable — the dead
       intermediates of the run so far would otherwise be dragged
       through every level swap *)
    collect m;
    m.in_reorder <- true;
    m.ro_mark <- m.next_uid;
    m.ro_excess <- 0;
    Hashtbl.reset m.ro_lrc;
    Hashtbl.reset m.ro_prc;
    (* seed the logical counts: internal in-degrees, with in-degree-0
       nodes — external handles and garbage tops alike — as roots
       carrying one implicit, unreleasable reference *)
    let bump n =
      if n.var <> leaf_level then
        Hashtbl.replace m.ro_lrc n.uid
          (1 + (match Hashtbl.find_opt m.ro_lrc n.uid with Some c -> c | None -> 0))
    in
    iter_table m (fun n ->
        bump n.low;
        bump n.high);
    iter_table m (fun n ->
        if not (Hashtbl.mem m.ro_lrc n.uid) then Hashtbl.replace m.ro_lrc n.uid 1);
    Fun.protect
      ~finally:(fun () ->
        m.in_reorder <- false;
        m.ro_mark <- max_int;
        m.ro_excess <- 0;
        Hashtbl.reset m.ro_lrc;
        Hashtbl.reset m.ro_prc)
      (fun () ->
        Kpt_obs.time "bdd.reorder" (fun () ->
            let ngroups = (m.nvars + 1) / 2 in
            let gvars =
              Array.init ngroups (fun k ->
                  if (2 * k) + 1 < m.nvars then [| 2 * k; (2 * k) + 1 |] else [| 2 * k |])
            in
            (* groups stay contiguous across reorders (they only ever move
               as blocks), so the current order of groups is the order of
               their top variables' levels *)
            let ids = Array.init ngroups (fun g -> g) in
            Array.sort (fun a b -> compare m.perm.(gvars.(a).(0)) m.perm.(gvars.(b).(0))) ids;
            let st = { gvars; gorder = ids; gpos = Array.make ngroups 0 } in
            Array.iteri (fun p g -> st.gpos.(g) <- p) st.gorder;
            (* sift the heaviest groups first: they have the most to give *)
            let by_weight = Array.init ngroups (fun g -> g) in
            Array.sort (fun a b -> compare (group_nodes m st b) (group_nodes m st a)) by_weight;
            Array.iter (fun g -> if group_nodes m st g > 0 then sift_group m st g) by_weight));
    (* exit sweep: sifting zombified the displaced structure; what no
       live handle reaches can go *)
    collect m;
    if m.live < before then Kpt_obs.add c_ro_saved (before - m.live)
  end;
  (* Back off geometrically so a workload that keeps growing re-sifts at
     ever coarser intervals instead of thrashing; the basis is the live
     table size, which after the exit sweep counts only reachable nodes.
     Under abort-and-retry pressure the threshold must grow regardless:
     the entry sweep cleared the op cache, so a restarted operation
     recomputes from scratch and would livelock if sifting kept handing
     it the same headroom it already outgrew — each consecutive restart
     doubles the ceiling instead. *)
  let base = max (2 * (m.live + 2)) default_reorder_threshold in
  m.reorder_threshold <-
    (if m.ro_streak > 0 then max base (2 * m.reorder_threshold) else base)

(* Public-operation guard: an auto-triggered reorder must never run while
   an apply/quantify recursion is mid-flight (its local cofactor state
   assumes a frozen order), so triggers only {e arm a flag} and the flag
   is honoured at the entry of the outermost public operation. *)
let enter m =
  if m.op_depth = 0 && m.reorder_pending && not m.in_reorder then reorder_now m;
  m.op_depth <- m.op_depth + 1

let leave m = m.op_depth <- m.op_depth - 1

let rec guarded m f =
  enter m;
  match f () with
  | r ->
      leave m;
      if m.op_depth = 0 then m.ro_streak <- 0;
      r
  | exception Restart_for_reorder when m.op_depth = 1 ->
      (* outermost public operation: honour the pending reorder (at the
         re-entry below, where the depth is 0 again) and run [f] afresh *)
      m.ro_streak <- m.ro_streak + 1;
      leave m;
      guarded m f
  | exception e ->
      leave m;
      raise e

let reorder m = if m.op_depth = 0 && not m.in_reorder then reorder_now m

let set_auto_reorder m ?threshold on =
  m.auto_reorder <- on;
  (match threshold with
  | Some th -> m.reorder_threshold <- max 16 th
  | None -> ());
  if on && m.live + 2 >= m.reorder_threshold then m.reorder_pending <- true

let level_of_var m v = posv m v

let var m i =
  assert (0 <= i && i < leaf_level);
  mk m i m.t_false m.t_true

let nvar m i =
  assert (0 <= i && i < leaf_level);
  mk m i m.t_true m.t_false

(* Operation tags for the packed cache.  Binary boolean operators use
   their own tag with z = 0; [not] and [ite] get dedicated tags. *)
let op_and = 0
let op_or = 1
let op_xor = 2
let op_imp = 3
let op_iff = 4
let op_ite = 5
let op_not = 6

(* Binary apply.  [op] tags the cache entry; [terminal] decides leaves and
   short-circuits.  Commutative operators normalise the cache key. *)
let bin m ~op ~commutative ~terminal =
  let rec compute a b =
    let pa = pos m a and pb = pos m b in
    let topvar = if pa <= pb then a.var else b.var in
    let a0, a1 = if pa <= pb then (a.low, a.high) else (a, a) in
    let b0, b1 = if pb <= pa then (b.low, b.high) else (b, b) in
    mk m topvar (go a0 b0) (go a1 b1)
  and go a b =
    match terminal a b with
    | Some r -> r
    | None ->
        let x, y =
          if commutative && a.uid > b.uid then (b.uid, a.uid) else (a.uid, b.uid)
        in
        if op_packs x y 0 then begin
          let k = op_key op x y 0 in
          let i = slot_of m.op_mask k in
          if m.op_key.(i) = k then begin
            Kpt_obs.incr c_hit;
            m.op_res.(i)
          end
          else begin
            Kpt_obs.incr c_miss;
            let r = compute a b in
            cache_store m i k r;
            r
          end
        end
        else begin
          Kpt_obs.incr c_spill;
          match Hashtbl.find_opt m.op_spill (op, x, y, 0) with
          | Some r ->
              Kpt_obs.incr c_hit;
              r
          | None ->
              Kpt_obs.incr c_miss;
              let r = compute a b in
              Hashtbl.replace m.op_spill (op, x, y, 0) r;
              r
        end
  in
  go

let and_ m a b =
  let terminal a b =
    if is_false a || is_false b then Some m.t_false
    else if is_true a then Some b
    else if is_true b then Some a
    else if a == b then Some a
    else None
  in
  guarded m (fun () -> bin m ~op:op_and ~commutative:true ~terminal a b)

let or_ m a b =
  let terminal a b =
    if is_true a || is_true b then Some m.t_true
    else if is_false a then Some b
    else if is_false b then Some a
    else if a == b then Some a
    else None
  in
  guarded m (fun () -> bin m ~op:op_or ~commutative:true ~terminal a b)

let rec not_rec m a =
  if is_true a then m.t_false
  else if is_false a then m.t_true
  else if op_packs a.uid 0 0 then begin
    let k = op_key op_not a.uid 0 0 in
    let i = slot_of m.op_mask k in
    if m.op_key.(i) = k then begin
      Kpt_obs.incr c_hit;
      m.op_res.(i)
    end
    else begin
      Kpt_obs.incr c_miss;
      let r = mk m a.var (not_rec m a.low) (not_rec m a.high) in
      cache_store m i k r;
      (* seed the reverse direction too: ¬r = a *)
      if op_packs r.uid 0 0 then begin
        let k' = op_key op_not r.uid 0 0 in
        cache_store m (slot_of m.op_mask k') k' a
      end;
      r
    end
  end
  else begin
    Kpt_obs.incr c_spill;
    match Hashtbl.find_opt m.op_spill (op_not, a.uid, 0, 0) with
    | Some r ->
        Kpt_obs.incr c_hit;
        r
    | None ->
        Kpt_obs.incr c_miss;
        let r = mk m a.var (not_rec m a.low) (not_rec m a.high) in
        Hashtbl.replace m.op_spill (op_not, a.uid, 0, 0) r;
        Hashtbl.replace m.op_spill (op_not, r.uid, 0, 0) a;
        r
  end

let not_ m a = guarded m (fun () -> not_rec m a)

let xor m a b =
  let terminal a b =
    if a == b then Some m.t_false
    else if is_false a then Some b
    else if is_false b then Some a
    else if is_true a then Some (not_rec m b)
    else if is_true b then Some (not_rec m a)
    else None
  in
  guarded m (fun () -> bin m ~op:op_xor ~commutative:true ~terminal a b)

let imp m a b =
  let terminal a b =
    if is_false a || is_true b then Some m.t_true
    else if is_true a then Some b
    else if a == b then Some m.t_true
    else if is_false b then Some (not_rec m a)
    else None
  in
  guarded m (fun () -> bin m ~op:op_imp ~commutative:false ~terminal a b)

let iff m a b =
  let terminal a b =
    if a == b then Some m.t_true
    else if is_true a then Some b
    else if is_true b then Some a
    else if is_false a then Some (not_rec m b)
    else if is_false b then Some (not_rec m a)
    else None
  in
  guarded m (fun () -> bin m ~op:op_iff ~commutative:true ~terminal a b)

let rec ite_rec m c a b =
  if is_true c then a
  else if is_false c then b
  else if a == b then a
  else if is_true a && is_false b then c
  else
    let compute () =
      let p = min (pos m c) (min (pos m a) (pos m b)) in
      let topvar =
        if pos m c = p then c.var else if pos m a = p then a.var else b.var
      in
      let cof n = if pos m n = p then (n.low, n.high) else (n, n) in
      let c0, c1 = cof c and a0, a1 = cof a and b0, b1 = cof b in
      mk m topvar (ite_rec m c0 a0 b0) (ite_rec m c1 a1 b1)
    in
    if op_packs c.uid a.uid b.uid then begin
      let k = op_key op_ite c.uid a.uid b.uid in
      let i = slot_of m.op_mask k in
      if m.op_key.(i) = k then begin
        Kpt_obs.incr c_hit;
        m.op_res.(i)
      end
      else begin
        Kpt_obs.incr c_miss;
        let r = compute () in
        cache_store m i k r;
        r
      end
    end
    else begin
      Kpt_obs.incr c_spill;
      match Hashtbl.find_opt m.op_spill (op_ite, c.uid, a.uid, b.uid) with
      | Some r ->
          Kpt_obs.incr c_hit;
          r
      | None ->
          Kpt_obs.incr c_miss;
          let r = compute () in
          Hashtbl.replace m.op_spill (op_ite, c.uid, a.uid, b.uid) r;
          r
    end

let ite m c a b = guarded m (fun () -> ite_rec m c a b)

(* n-ary conjunction/disjunction as balanced-tree folds: pairing operands
   keeps the intermediate BDDs small compared to a linear [fold_left]
   (which carries one ever-growing accumulator through the whole list). *)
let balanced_fold op unit ps =
  match ps with
  | [] -> unit
  | [ p ] -> p
  | ps ->
      let a = Array.of_list ps in
      let n = ref (Array.length a) in
      while !n > 1 do
        let k = !n in
        for i = 0 to (k / 2) - 1 do
          a.(i) <- op a.(2 * i) a.((2 * i) + 1)
        done;
        if k land 1 = 1 then a.(k / 2) <- a.(k - 1);
        n := (k + 1) / 2
      done;
      a.(0)

let conj m ps = balanced_fold (and_ m) (tru m) ps
let disj m ps = balanced_fold (or_ m) (fls m) ps
let implies m a b = is_true (imp m a b)

let restrict m root i polarity =
  guarded m (fun () ->
      let pi = posv m i in
      let memo = Hashtbl.create 64 in
      let rec go n =
        if pos m n > pi then n
        else if n.var = i then if polarity then n.high else n.low
        else
          match Hashtbl.find_opt memo n.uid with
          | Some r -> r
          | None ->
              let r = mk m n.var (go n.low) (go n.high) in
              Hashtbl.add memo n.uid r;
              r
      in
      go root)

let rec drop_below p = function
  | l :: rest when l < p -> drop_below p rest
  | ls -> ls

(* Quantification works in {e level} space: the variable list is mapped
   to sorted levels up front, so the recursion compares one int per node
   regardless of the current order.  The memo is keyed on the node uid
   only: after dropping levels above the node's, the remaining list is a
   function of the node's level alone (the input list is sorted). *)
let quant_levels m ~ex levels root =
  let combine = if ex then or_ m else and_ m in
  let memo = Hashtbl.create 256 in
  let rec go ls n =
    if is_leaf n then n
    else
      let p = pos m n in
      let ls = drop_below p ls in
      match ls with
      | [] -> n
      | l :: rest -> (
          match Hashtbl.find_opt memo n.uid with
          | Some r -> r
          | None ->
              let r =
                if l = p then combine (go rest n.low) (go rest n.high)
                else mk m n.var (go ls n.low) (go ls n.high)
              in
              Hashtbl.add memo n.uid r;
              r)
  in
  go levels root

let levels_of_vars m vars = List.sort_uniq compare (List.map (posv m) vars)

let exists m vars root =
  guarded m (fun () -> quant_levels m ~ex:true (levels_of_vars m vars) root)

let forall m vars root =
  guarded m (fun () -> quant_levels m ~ex:false (levels_of_vars m vars) root)

let bin_and m a b =
  let terminal a b =
    if is_false a || is_false b then Some m.t_false
    else if is_true a then Some b
    else if is_true b then Some a
    else if a == b then Some a
    else None
  in
  bin m ~op:op_and ~commutative:true ~terminal a b

let and_exists m vars a b =
  guarded m (fun () ->
      let sorted = levels_of_vars m vars in
      let memo = Hashtbl.create 256 in
      let rec go ls a b =
        if is_false a || is_false b then m.t_false
        else if is_true a then quant_levels m ~ex:true ls b
        else if is_true b then quant_levels m ~ex:true ls a
        else
          let pa = pos m a and pb = pos m b in
          let p = min pa pb in
          let ls = drop_below p ls in
          match ls with
          | [] -> bin_and m a b
          | l :: rest -> (
              let key = if a.uid > b.uid then (b.uid, a.uid) else (a.uid, b.uid) in
              match Hashtbl.find_opt memo key with
              | Some r -> r
              | None ->
                  let topvar = if pa <= pb then a.var else b.var in
                  let a0, a1 = if pa = p then (a.low, a.high) else (a, a) in
                  let b0, b1 = if pb = p then (b.low, b.high) else (b, b) in
                  let r =
                    if l = p then or_ m (go rest a0 b0) (go rest a1 b1)
                    else mk m topvar (go ls a0 b0) (go ls a1 b1)
                  in
                  Hashtbl.add memo key r;
                  r)
      in
      go sorted a b)

(* Rename is order-sensitive: the classic single-pass recursion is only
   canonical when the map preserves the {e level} order of the support.
   Under the identity order (no reorder has ever run) every historical
   caller passes an index-monotone map, so the fast path is free; once
   the manager has been reordered the support is checked first, and a
   non-monotone map falls back to ite-composition, which is correct at
   any order. *)
let rename m f root =
  guarded m (fun () ->
      let fast () =
        let memo = Hashtbl.create 256 in
        let rec go n =
          if is_leaf n then n
          else
            match Hashtbl.find_opt memo n.uid with
            | Some r -> r
            | None ->
                let r = mk m (f n.var) (go n.low) (go n.high) in
                Hashtbl.add memo n.uid r;
                r
        in
        go root
      in
      (* The fast path is only sound when the map is monotone on the
         {e levels} of the root's support — renaming node-by-node keeps
         the structural order, which must then be the level order.  That
         can fail even on a never-reordered manager (an index swap), so
         the support analysis always runs; it costs one extra walk of
         the root, against the rebuild walk the rename does anyway. *)
      begin
        let seen = Hashtbl.create 64 in
        let sup = ref [] in
        let rec collect n =
          if (not (is_leaf n)) && not (Hashtbl.mem seen n.uid) then begin
            Hashtbl.add seen n.uid ();
            sup := n.var :: !sup;
            collect n.low;
            collect n.high
          end
        in
        collect root;
        let by_level = List.sort (fun a b -> compare (posv m a) (posv m b)) !sup in
        let images = List.map (fun v -> posv m (f v)) by_level in
        let rec monotone = function
          | a :: (b :: _ as rest) -> a < b && monotone rest
          | _ -> true
        in
        if monotone images then fast ()
        else begin
          let memo = Hashtbl.create 256 in
          let rec go n =
            if is_leaf n then n
            else
              match Hashtbl.find_opt memo n.uid with
              | Some r -> r
              | None ->
                  let r = ite_rec m (mk m (f n.var) m.t_false m.t_true) (go n.high) (go n.low) in
                  Hashtbl.add memo n.uid r;
                  r
          in
          go root
        end
      end)

let support _m root =
  let seen = Hashtbl.create 256 in
  let vars = Hashtbl.create 64 in
  let rec go n =
    if (not (is_leaf n)) && not (Hashtbl.mem seen n.uid) then begin
      Hashtbl.add seen n.uid ();
      Hashtbl.replace vars n.var ();
      go n.low;
      go n.high
    end
  in
  go root;
  Hashtbl.fold (fun l () acc -> l :: acc) vars [] |> List.sort compare

(* Early-exit dependence test: stop at the first node labelled [i]; prune
   subtrees rooted strictly below [i]'s level (levels only grow downward),
   and never materialise the support list. *)
exception Found

let depends_on m root i =
  let pi = posv m i in
  let seen = Hashtbl.create 64 in
  let rec go n =
    if n.var = i then raise Found
    else if pos m n < pi && not (Hashtbl.mem seen n.uid) then begin
      Hashtbl.add seen n.uid ();
      go n.low;
      go n.high
    end
  in
  match go root with () -> false | exception Found -> true

let size _m root =
  let seen = Hashtbl.create 256 in
  let rec go n =
    if (not (is_leaf n)) && not (Hashtbl.mem seen n.uid) then begin
      Hashtbl.add seen n.uid ();
      go n.low;
      go n.high
    end
  in
  go root;
  Hashtbl.length seen

let node_count m = m.next_uid

(* Exact model counting: the classic per-node recurrence over the node
   {e ranks} — each support variable's index must be < [nvars], but its
   level can be anywhere in the order, so levels are first compressed to
   the rank they hold among the levels of variables 0..nvars-1. *)
let sat_count_exact m ~nvars root =
  let width = max nvars m.nvars in
  let sorted = Array.init nvars (fun v -> posv m v) in
  Array.sort compare sorted;
  let rank_of_level = Array.make (width + 1) (-1) in
  Array.iteri (fun r l -> rank_of_level.(l) <- r) sorted;
  let rank n =
    if is_leaf n then nvars
    else begin
      let r = rank_of_level.(posv m n.var) in
      assert (r >= 0);
      r
    end
  in
  let memo = Hashtbl.create 256 in
  let rec go n =
    if is_false n then Bigcount.zero
    else if is_true n then Bigcount.one
    else
      match Hashtbl.find_opt memo n.uid with
      | Some c -> c
      | None ->
          let rn = rank n in
          let weight child = Bigcount.shift_left (go child) (rank child - rn - 1) in
          let c = Bigcount.add (weight n.low) (weight n.high) in
          Hashtbl.add memo n.uid c;
          c
  in
  Bigcount.shift_left (go root) (rank root)

let sat_count m ~nvars root = Bigcount.to_float (sat_count_exact m ~nvars root)

let any_sat _m root =
  if is_false root then raise Not_found;
  let rec go acc n =
    if is_leaf n then List.rev acc
    else if is_false n.low then go ((n.var, true) :: acc) n.high
    else go ((n.var, false) :: acc) n.low
  in
  go [] root

let iter_sat m ~vars root f =
  let vars = List.sort_uniq compare vars in
  let vars = List.stable_sort (fun a b -> compare (posv m a) (posv m b)) vars in
  let asg = Hashtbl.create 16 in
  let lookup i = Hashtbl.find asg i in
  let rec go vs n =
    if is_false n then ()
    else
      match vs with
      | [] ->
          assert (is_true n);
          f lookup
      | v :: rest ->
          assert (pos m n >= posv m v);
          let branch b =
            Hashtbl.replace asg v b;
            let n' = if n.var = v then if b then n.high else n.low else n in
            go rest n'
          in
          branch false;
          branch true;
          Hashtbl.remove asg v
  in
  go vars root

let live_count m = m.live + 2

type stats = {
  nodes_created : int;
  live_nodes : int;
  unique_slots : int;
  unique_load : float;
  spill_nodes : int;
  cache_slots : int;
}

let stats m =
  let slots = ref 0 and spill = ref 0 and packed = ref 0 in
  for v = 0 to m.nvars - 1 do
    slots := !slots + Array.length m.subs.(v).s_key;
    spill := !spill + Hashtbl.length m.subs.(v).s_spill;
    packed := !packed + m.subs.(v).s_count
  done;
  {
    nodes_created = m.next_uid;
    live_nodes = live_count m;
    unique_slots = !slots;
    unique_load = (if !slots = 0 then 0.0 else float_of_int !packed /. float_of_int !slots);
    spill_nodes = !spill;
    cache_slots = m.op_mask + 1;
  }

let gc m ~roots =
  clear_caches m;
  let keep = Hashtbl.create (max 16 m.live) in
  let rec mark n =
    if (not (is_leaf n)) && not (Hashtbl.mem keep n.uid) then begin
      Hashtbl.add keep n.uid n;
      mark n.low;
      mark n.high
    end
  in
  List.iter mark roots;
  for v = 0 to m.nvars - 1 do
    let sub = m.subs.(v) in
    sub.s_count <- 0;
    sub.s_key <- Array.make initial_sub_slots 0;
    sub.s_node <- Array.make initial_sub_slots m.t_false;
    Hashtbl.reset sub.s_spill
  done;
  m.live <- 0;
  Hashtbl.iter (fun _ n -> insert_node m n) keep

let rec eval n valuation =
  if is_true n then true
  else if is_false n then false
  else if valuation n.var then eval n.high valuation
  else eval n.low valuation

let pp _m fmt root =
  let rec go fmt n =
    if is_true n then Format.fprintf fmt "T"
    else if is_false n then Format.fprintf fmt "F"
    else Format.fprintf fmt "(v%d ? %a : %a)" n.var go n.high go n.low
  in
  go fmt root
