let man = Space.manager

let valid sp p = Bdd.implies (man sp) (Space.domain sp) p
let holds_implies sp p q = Bdd.implies (man sp) (Bdd.and_ (man sp) (Space.domain sp) p) q
let equivalent sp p q = Bdd.is_true (Bdd.imp (man sp) (Space.domain sp) (Bdd.iff (man sp) p q))
let normalize sp p = Bdd.and_ (man sp) p (Space.domain sp)

let complement_vars = Space.complement

(* Quantification ranges over type-correct values only: the flattened bit
   list and the range-constraint predicate of the quantified variables are
   memoised per variable set in the space (the hot path of wcyl/K_i). *)
let forall_vars sp vs p =
  let m = man sp in
  let bits, local = Space.quant_data sp vs in
  Bdd.forall m bits (Bdd.imp m local p)

let exists_vars sp vs p =
  let m = man sp in
  let bits, local = Space.quant_data sp vs in
  Bdd.exists m bits (Bdd.and_ m local p)

let depends_only_on sp p vs =
  let outside = complement_vars sp vs in
  equivalent sp p (exists_vars sp outside p)

let random rng ?(density = 0.5) sp =
  let m = man sp in
  let acc = ref (Bdd.fls m) in
  Space.iter_states sp (fun st ->
      if Stdlib.Random.State.float rng 1.0 < density then
        acc := Bdd.or_ m !acc (Space.pred_of_state sp st));
  !acc
