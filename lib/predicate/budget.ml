(* Resource budgets for the symbolic engine.

   A budget is three independent, optional ceilings: a wall-clock
   deadline (measured on the monotonic clock, like everything else in
   this repository), an iteration "fuel" (consumed by the coarse
   fixpoint loops — sst rounds, Ĝ-steps, gfp sweeps, KBP candidates) and
   a BDD node-count ceiling (checked periodically by the node allocator,
   so even a single pathological apply cannot blow the heap between two
   fixpoint rounds).

   The split between [limits] (immutable configuration, what the CLI
   flags produce) and [t] (an {e armed} budget with an absolute deadline
   and a mutable fuel tank) matters for the parallel pool: each task
   arms its own copy, so a deadline is relative to the task's start, not
   to the batch's. *)

type limits = {
  timeout_ns : int64 option;
  fuel : int option;
  max_nodes : int option;
}

let unlimited = { timeout_ns = None; fuel = None; max_nodes = None }

let limits ?timeout_ns ?fuel ?max_nodes () = { timeout_ns; fuel; max_nodes }

let is_unlimited l = l.timeout_ns = None && l.fuel = None && l.max_nodes = None

(* The semantic lint tier runs the engine under this budget by default.
   Deliberately no wall-clock component: fuel and node ceilings are
   deterministic, so a lint run exhausts (or doesn't) identically on
   every machine — goldens and the -j1/-j4 pin depend on that. *)
let analysis_default =
  { timeout_ns = None; fuel = Some 10_000; max_nodes = Some 1_000_000 }

let timeout_of_seconds s =
  if s <= 0.0 then invalid_arg "Budget.timeout_of_seconds: timeout must be positive";
  Int64.of_float (s *. 1e9)

type reason =
  | Timeout of { limit_ns : int64 }
  | Fuel_exhausted of { limit : int }
  | Node_ceiling of { limit : int; nodes : int }

exception Exhausted of reason

type t = {
  limits : limits;
  deadline_ns : int64; (* absolute; [Int64.max_int] when unbounded *)
  mutable fuel_left : int; (* [max_int] when unbounded *)
  node_limit : int; (* [max_int] when unbounded *)
}

let arm l =
  {
    limits = l;
    deadline_ns =
      (match l.timeout_ns with
      | Some ns -> Int64.add (Kpt_obs.now_ns ()) ns
      | None -> Int64.max_int);
    fuel_left = (match l.fuel with Some f -> max 0 f | None -> max_int);
    node_limit = (match l.max_nodes with Some n -> max 0 n | None -> max_int);
  }

let limits_of t = t.limits

let fuel_left t = if t.limits.fuel = None then None else Some t.fuel_left

let exhausted r = raise (Exhausted r)

(* The checkpoint the fixpoint loops call once per round.  Fuel is
   consumed first (it is the deterministic ceiling, so a fuel-limited
   run reports fuel exhaustion identically on every machine); the clock
   is only read when a deadline is actually armed. *)
let check ?(fuel = 0) t =
  if fuel > 0 then begin
    if t.fuel_left < fuel then
      exhausted (Fuel_exhausted { limit = Option.get t.limits.fuel });
    t.fuel_left <- t.fuel_left - fuel
  end;
  if
    t.deadline_ns <> Int64.max_int
    && Int64.compare (Kpt_obs.now_ns ()) t.deadline_ns > 0
  then exhausted (Timeout { limit_ns = Option.get t.limits.timeout_ns })

(* Called (amortised) by the BDD node allocator: ceiling plus deadline,
   never fuel — node creation is not an iteration. *)
let check_nodes t nodes =
  if nodes > t.node_limit then
    exhausted (Node_ceiling { limit = t.node_limit; nodes });
  if
    t.deadline_ns <> Int64.max_int
    && Int64.compare (Kpt_obs.now_ns ()) t.deadline_ns > 0
  then exhausted (Timeout { limit_ns = Option.get t.limits.timeout_ns })

let reason_to_string = function
  | Timeout { limit_ns } ->
      Printf.sprintf "wall-clock timeout of %.3fs exceeded"
        (Int64.to_float limit_ns /. 1e9)
  | Fuel_exhausted { limit } ->
      Printf.sprintf "iteration fuel of %d exhausted" limit
  | Node_ceiling { limit; nodes } ->
      Printf.sprintf "BDD node ceiling of %d exceeded (%d nodes created)" limit nodes

let reason_slug = function
  | Timeout _ -> "timeout"
  | Fuel_exhausted _ -> "fuel"
  | Node_ceiling _ -> "nodes"

let pp_reason fmt r = Format.pp_print_string fmt (reason_to_string r)

let () =
  Printexc.register_printer (function
    | Exhausted r -> Some (Printf.sprintf "Budget.Exhausted (%s)" (reason_to_string r))
    | _ -> None)
