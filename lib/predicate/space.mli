(** Finite-domain state spaces.

    A space owns a {!Bdd.manager} and a set of typed program variables
    (Booleans, bounded naturals, enumerations).  Each variable is encoded
    on a block of BDD bits; every bit slot [s] carries a {e current} copy
    (BDD variable [2s]) and a {e next} copy (BDD variable [2s+1]), so the
    current/next renaming used by transition relations is order-preserving
    and cheap.

    The paper's "state space" is exactly the set of type-correct
    valuations of these variables; a {e predicate} is a BDD over current
    bits, a {e transition relation} a BDD over current and next bits. *)

type t
(** A state space (mutable: variables may be declared at any time). *)

type var
(** A program variable of the space. *)

type state = int array
(** A concrete point of the state space: [state.(idx v)] is the value of
    [v] as an integer (Booleans: 0/1; enums: value index). *)

val create : ?engine:Engine.t -> unit -> t
(** [create ()] makes a space under the current engine
    ({!Engine.current} — {!Engine.default} outside any {!Engine.use});
    pass [~engine] to tie the space to an explicit engine context. *)

val manager : t -> Bdd.manager
(** The BDD manager all predicates of this space live in. *)

val engine : t -> Engine.t
(** The engine context this space was created under.  The engine's
    {!Engine.reorder_mode} at creation time decides whether the space's
    manager sifts automatically ([Reorder_auto]) or only on explicit
    {!reorder} calls. *)

val reorder : t -> unit
(** Run one sifting pass on the space's manager now (see {!Bdd.reorder}).
    All predicates of the space remain valid and canonical. *)

val bool_var : t -> string -> var
(** Declare a Boolean variable.  @raise Invalid_argument on a duplicate
    name. *)

val nat_var : t -> string -> max:int -> var
(** Declare a bounded natural with values [0..max]. *)

val enum_var : t -> string -> values:string array -> var
(** Declare an enumeration; values are indices into [values]. *)

val vars : t -> var list
(** All variables, in declaration order. *)

val find : t -> string -> var
(** Look a variable up by name.  @raise Not_found. *)

val name : var -> string
val idx : var -> int

val card : var -> int
(** Number of values of the variable's type. *)

val width : var -> int
(** Bits used to encode the variable. *)

val value_name : var -> int -> string
(** Human-readable value ("true", "3", enum label). *)

val current_bits : var -> int list
val next_bits : var -> int list
val all_current_bits : t -> int list
val all_next_bits : t -> int list

val cur_vec : t -> var -> Bitvec.t
(** The variable's value as a symbolic bit-vector over current bits. *)

val next_vec : t -> var -> Bitvec.t

val to_next : t -> Bdd.t -> Bdd.t
(** Rename a current-bit predicate onto next bits. *)

val to_current : t -> Bdd.t -> Bdd.t

val domain : t -> Bdd.t
(** Current-bit predicate: every variable is within its range (only
    non-power-of-two cardinalities contribute).  Cached; invalidated by
    later declarations. *)

val domain_next : t -> Bdd.t

val identity : t -> Bdd.t
(** The identity transition relation [⋀ v :: v' = v] over current × next
    bits — the skip branch of every guarded statement.  Cached; later
    declarations invalidate it. *)

val quant_data : t -> var list -> int list * Bdd.t
(** Quantification data for a set of program variables: their flattened
    current bits and the conjunction of their range constraints (the
    "local domain" that keeps quantification over type-correct values).
    Memoised per variable set — the hot path of [wcyl]/[K_i]. *)

val complement : t -> var list -> var list
(** The paper's [V̄]: all variables of the space not in the given list, in
    declaration order.  Memoised per variable set (and recomputed if new
    variables have been declared since). *)

val state_count : t -> int
(** Cardinality of the state space (product of variable cardinalities).
    Overflows native ints on huge spaces; see {!state_count_exact}. *)

val state_count_exact : t -> Bigcount.t
(** Exact cardinality of the state space, at any size. *)

val iter_states : t -> (state -> unit) -> unit
(** Enumerate every type-correct state.  The callback's array is reused;
    copy it if you keep it. *)

val pred_of_state : t -> state -> Bdd.t
(** The singleton predicate holding exactly at the given state. *)

val holds_at : t -> Bdd.t -> state -> bool
(** Evaluate a current-bit predicate at a state. *)

val states_of : t -> Bdd.t -> state list
(** All states satisfying a predicate (by enumeration; intended for small
    spaces and for tests). *)

val count_states_exact : t -> Bdd.t -> Bigcount.t
(** Exact number of states satisfying a predicate, computed {e
    symbolically} (an exact model count of the predicate restricted to
    the domain): O(BDD nodes), not O(state space). *)

val count_states_of : t -> Bdd.t -> int
(** [List.length (states_of sp p)] via {!count_states_exact} (clamped to
    [max_int] on astronomically large counts). *)

val pp_state : t -> Format.formatter -> state -> unit
(** ["⟨x=1 y=true …⟩"]. *)

val pp_pred : t -> Format.formatter -> Bdd.t -> unit
(** Print a predicate as the set of its states (small spaces only). *)
