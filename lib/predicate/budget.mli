(** Resource budgets for the symbolic engine.

    A budget bounds a symbolic computation along three independent axes:
    a wall-clock deadline (monotonic clock, {!Kpt_obs.now_ns}), an
    iteration {e fuel} consumed by the coarse fixpoint loops
    ([Program.sst] rounds, [Kbp] Ĝ-steps and candidates,
    [Props.fair_avoid] sweeps), and a ceiling on the number of BDD nodes
    a manager may allocate.  Exceeding any ceiling raises {!Exhausted}
    with a structured {!reason}; callers that want a graceful outcome
    (e.g. [Kbp.solve]) catch it and report a partial result. *)

(** Immutable ceilings, as configured by CLI flags. [None] = unbounded. *)
type limits = {
  timeout_ns : int64 option;
  fuel : int option;
  max_nodes : int option;
}

val unlimited : limits

val limits :
  ?timeout_ns:int64 -> ?fuel:int -> ?max_nodes:int -> unit -> limits

val is_unlimited : limits -> bool

val analysis_default : limits
(** Default ceilings for the semantic lint tier (fuel and node ceiling
    only — no wall-clock component, so exhaustion is deterministic and
    machine-independent). *)

(** [timeout_of_seconds s] converts a positive duration in seconds to
    nanoseconds. Raises [Invalid_argument] on [s <= 0]. *)
val timeout_of_seconds : float -> int64

type reason =
  | Timeout of { limit_ns : int64 }
  | Fuel_exhausted of { limit : int }
  | Node_ceiling of { limit : int; nodes : int }

exception Exhausted of reason

(** An armed budget: absolute deadline and a mutable fuel tank.  Arm one
    per task — the deadline is relative to the call to {!arm}. *)
type t

val arm : limits -> t
val limits_of : t -> limits

(** Remaining fuel, or [None] if fuel is unbounded. *)
val fuel_left : t -> int option

(** [check ?fuel t] consumes [fuel] units (default 0) and then checks
    the deadline. Raises {!Exhausted} when either ceiling is hit; fuel
    is checked first so fuel-limited runs fail deterministically. *)
val check : ?fuel:int -> t -> unit

(** [check_nodes t n] checks the node ceiling against the current node
    count [n], then the deadline. Never consumes fuel. *)
val check_nodes : t -> int -> unit

val reason_to_string : reason -> string

(** Short machine-readable tag: ["timeout"], ["fuel"] or ["nodes"]. *)
val reason_slug : reason -> string

val pp_reason : Format.formatter -> reason -> unit
