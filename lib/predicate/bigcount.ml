(* Unsigned bignums in base 10^9, little-endian limb arrays with no
   trailing zero limbs ([| |] is zero).  The decimal base makes
   [to_string] a straight limb dump; counting needs only addition and
   small multiplications, so the quadratic-free simplicity is the point. *)

type t = int array

let base = 1_000_000_000
let zero = [||]
let is_zero x = Array.length x = 0

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bigcount.of_int: negative";
  let rec limbs n = if n = 0 then [] else (n mod base) :: limbs (n / base) in
  Array.of_list (limbs n)

let one = of_int 1

let add x y =
  let lx = Array.length x and ly = Array.length y in
  let n = max lx ly in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < lx then x.(i) else 0) + (if i < ly then y.(i) else 0) + !carry in
    r.(i) <- s mod base;
    carry := s / base
  done;
  r.(n) <- !carry;
  normalize r

(* One limb times a factor stays within the native range as long as the
   factor is at most 2^30 (10^9 · 2^30 < 2^62); bigger factors are split
   below in [mul_int]. *)
let mul_small x f =
  if f = 0 || is_zero x then zero
  else begin
    let n = Array.length x in
    let r = Array.make (n + 2) 0 in
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (x.(i) * f) + !carry in
      r.(i) <- p mod base;
      carry := p / base
    done;
    let i = ref n in
    while !carry > 0 do
      r.(!i) <- !carry mod base;
      carry := !carry / base;
      incr i
    done;
    normalize r
  end

let shift_left x k =
  if k < 0 then invalid_arg "Bigcount.shift_left: negative";
  let rec go x k = if k = 0 then x else go (mul_small x (1 lsl min k 29)) (k - min k 29) in
  go x k

let rec mul_int x f =
  if f < 0 then invalid_arg "Bigcount.mul_int: negative"
  else if f <= 1 lsl 30 then mul_small x f
  else
    (* x·f = (x·⌊f/2^30⌋)·2^30 + x·(f mod 2^30) *)
    add (shift_left (mul_int x (f lsr 30)) 30) (mul_small x (f land ((1 lsl 30) - 1)))

let pow2 k = shift_left one k

(* Exact halving: one top-down pass per bit, carrying the remainder into
   the next (lower) limb — in base 10^9 a carry of 1 is worth 10^9/2·2,
   so [carry·base + limb] never leaves the native range. *)
let shift_right x k =
  if k < 0 then invalid_arg "Bigcount.shift_right: negative";
  let x = ref (Array.copy x) in
  for _ = 1 to k do
    let a = !x in
    let carry = ref 0 in
    for i = Array.length a - 1 downto 0 do
      let v = (!carry * base) + a.(i) in
      a.(i) <- v / 2;
      carry := v land 1
    done;
    if !carry <> 0 then invalid_arg "Bigcount.shift_right: inexact";
    x := normalize a
  done;
  !x

let compare x y =
  let c = Int.compare (Array.length x) (Array.length y) in
  if c <> 0 then c
  else
    let rec go i =
      if i < 0 then 0
      else
        let c = Int.compare x.(i) y.(i) in
        if c <> 0 then c else go (i - 1)
    in
    go (Array.length x - 1)

let equal x y = compare x y = 0

let to_string x =
  if is_zero x then "0"
  else begin
    let n = Array.length x in
    let b = Buffer.create (n * 9) in
    Buffer.add_string b (string_of_int x.(n - 1));
    for i = n - 2 downto 0 do
      Buffer.add_string b (Printf.sprintf "%09d" x.(i))
    done;
    Buffer.contents b
  end

let to_float x =
  let acc = ref 0.0 in
  for i = Array.length x - 1 downto 0 do
    acc := (!acc *. float_of_int base) +. float_of_int x.(i)
  done;
  !acc

let to_int x =
  let rec go acc i =
    if i < 0 then Some acc
    else if acc > (max_int - x.(i)) / base then None
    else go ((acc * base) + x.(i)) (i - 1)
  in
  go 0 (Array.length x - 1)

let pp fmt x = Format.pp_print_string fmt (to_string x)
