(* An engine context makes ownership of the symbolic core's mutable
   state explicit.  The per-structure tables (the BDD unique table and
   op-cache, the Space memo tables) already live inside the manager each
   Space owns; what was genuinely process-global was the observability
   state — counters, spans, the event sink.  An [Engine.t] bundles an
   identity with the Kpt_obs metric context those tables report into, so
   a worker domain can run a whole solve/verify/lint pipeline under its
   own engine and the main domain can fold the numbers back in after the
   join. *)

type reorder_mode = Reorder_off | Reorder_auto | Reorder_manual

type t = {
  eid : int;
  obs : Kpt_obs.Ctx.t;
  mutable budget : Budget.t option;
  mutable reorder : reorder_mode option; (* [None] = follow the process default *)
}

(* Engine identities are process-wide (an engine may be created on one
   domain and used on another), so the id counter is the one piece of
   shared state here — a single Atomic.  The default reorder mode is the
   other: it is configuration (set once by the CLI before any solving),
   and worker domains must observe the mode the main domain chose. *)
let next_id = Atomic.make 0
let default_reorder = Atomic.make Reorder_off

let make obs = { eid = Atomic.fetch_and_add next_id 1; obs; budget = None; reorder = None }
let default = make Kpt_obs.Ctx.root
let create () = make (Kpt_obs.Ctx.create ())
let id t = t.eid
let obs t = t.obs
let is_default t = t == default

(* Which engine is "current" is a per-domain notion, tracked alongside
   (not inside) the Kpt_obs context: the obs layer must not know about
   engines, but [Space.create] wants to attribute new spaces to the
   engine of the enclosing [use]. *)
let dls_current = Domain.DLS.new_key (fun () -> default)

let current () = Domain.DLS.get dls_current

let use t f =
  let prev = Domain.DLS.get dls_current in
  Domain.DLS.set dls_current t;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set dls_current prev)
    (fun () -> Kpt_obs.Ctx.use t.obs f)
let merge_metrics ~into src = Kpt_obs.Ctx.merge ~into:into.obs src.obs
let counters t = Kpt_obs.Ctx.counters t.obs
let spans t = Kpt_obs.Ctx.spans t.obs

let set_default_reorder_mode mode = Atomic.set default_reorder mode
let default_reorder_mode () = Atomic.get default_reorder

let reorder_mode t =
  match t.reorder with Some m -> m | None -> Atomic.get default_reorder

let set_reorder_mode t mode = t.reorder <- mode

(* Budgets ride on the engine rather than on each Space: a solve touches
   several spaces (program, KBP bases, knowledge cylinders) but is one
   unit of work, and the pool already hands each task a private engine,
   so per-task deadlines fall out for free. *)
let set_budget t b = t.budget <- b
let budget t = t.budget

let with_budget ?engine limits f =
  let t = match engine with Some e -> e | None -> Domain.DLS.get dls_current in
  let prev = t.budget in
  t.budget <-
    (if Budget.is_unlimited limits then None else Some (Budget.arm limits));
  Fun.protect ~finally:(fun () -> t.budget <- prev) f

(* The checkpoints the fixpoint loops and the node allocator call.  Both
   must stay near-free when no budget is armed: one DLS read and one
   [None] match. *)
let checkpoint ?fuel () =
  match (Domain.DLS.get dls_current).budget with
  | None -> ()
  | Some b -> Budget.check ?fuel b

let check_nodes nodes =
  match (Domain.DLS.get dls_current).budget with
  | None -> ()
  | Some b -> Budget.check_nodes b nodes
