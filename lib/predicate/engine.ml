(* An engine context makes ownership of the symbolic core's mutable
   state explicit.  The per-structure tables (the BDD unique table and
   op-cache, the Space memo tables) already live inside the manager each
   Space owns; what was genuinely process-global was the observability
   state — counters, spans, the event sink.  An [Engine.t] bundles an
   identity with the Kpt_obs metric context those tables report into, so
   a worker domain can run a whole solve/verify/lint pipeline under its
   own engine and the main domain can fold the numbers back in after the
   join. *)

type t = { eid : int; obs : Kpt_obs.Ctx.t }

(* Engine identities are process-wide (an engine may be created on one
   domain and used on another), so the id counter is the one piece of
   shared state here — a single Atomic. *)
let next_id = Atomic.make 0

let make obs = { eid = Atomic.fetch_and_add next_id 1; obs }
let default = make Kpt_obs.Ctx.root
let create () = make (Kpt_obs.Ctx.create ())
let id t = t.eid
let obs t = t.obs
let is_default t = t == default

(* Which engine is "current" is a per-domain notion, tracked alongside
   (not inside) the Kpt_obs context: the obs layer must not know about
   engines, but [Space.create] wants to attribute new spaces to the
   engine of the enclosing [use]. *)
let dls_current = Domain.DLS.new_key (fun () -> default)

let current () = Domain.DLS.get dls_current

let use t f =
  let prev = Domain.DLS.get dls_current in
  Domain.DLS.set dls_current t;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set dls_current prev)
    (fun () -> Kpt_obs.Ctx.use t.obs f)
let merge_metrics ~into src = Kpt_obs.Ctx.merge ~into:into.obs src.obs
let counters t = Kpt_obs.Ctx.counters t.obs
let spans t = Kpt_obs.Ctx.spans t.obs
