(** Environment-statement synthesis: what a {!Model.t} lets the
    environment do to one channel direction, as UNITY statements in the
    §6.3 shape.  [Channel.env] in [kpt_protocols] is the high-level
    wrapper; this low-level entry point exists for channels that are not
    a [Channel.t] (e.g. the sliding-window builder's per-cell arrays). *)

open Kpt_predicate
open Kpt_unity

type channel_env = {
  statements : Stmt.t list;
      (** [env_dlv_NAME], then ([env_drop_NAME]), ([env_corr_NAME]),
          ([env_crash_NAME]) as the model demands.  For {!Model.lossy}
          and {!Model.duplicating} this is byte-identical to the
          historical hard-wired deliver/drop statements. *)
  init : Expr.t list;
      (** extra init conjuncts (the crash flag starts up) *)
  up : Space.var option;
      (** the crash flag, when this call declared one — pass it back in
          as [?up] to make several channel directions crash together *)
}

val env :
  Space.t ->
  slot:Space.var ->
  avail:Space.var ->
  bot:int ->
  ?up:Space.var ->
  ?corrupt_to:int ->
  name:string ->
  Model.t ->
  channel_env
(** [env sp ~slot ~avail ~bot ~name m] synthesises [m]'s environment
    statements for the channel direction [(slot, avail)] whose ⊥ encodes
    as [bot].  With [?up], a crash model guards delivery on the given
    flag instead of declaring (and crashing) its own [NAME_up].
    [corrupt_to] (default 0) is the valid-looking value an undetectable
    corruption writes; it must be in [0, bot).
    @raise Invalid_argument on a bad [corrupt_to]. *)

val crash_stmt : name:string -> Space.var -> Stmt.t
(** [env_crash_NAME : up := false] — for builders that share one crash
    flag across several channel directions (declare the flag, pass it to
    every {!env} call as [?up], and emit this statement once). *)
