(** The resilience matrix: re-verify a protocol's properties under each
    fault model and report which property survives which fault (the
    paper predicts, e.g., that transmit survives loss + duplication +
    ⊥-corruption — its §6.3 channel — while undetectable value
    corruption breaks the knowledge discharge obligations).

    Subjects are closures so this module needs no knowledge of the
    protocol builders; [Kpt_analysis.Resilience] supplies the bundled
    ones. *)

open Kpt_predicate

type verdict =
  | Holds
  | Fails
  | Exhausted of Budget.reason
      (** the per-cell budget ran out before a verdict *)
  | Error of string
      (** the builder or checker rejected this fault model *)

type property = { prop : string; check : unit -> bool }

type subject = {
  subject : string;
  build : Model.t -> property list;
      (** build the protocol under the given fault model and return its
          properties, each as a thunk run under the per-cell budget *)
}

type cell = { subject : string; fault : string; prop : string; verdict : verdict }

type t = { faults : string list; cells : cell list }

val default_faults : (string * Model.t) list
(** [perfect], [lossy], [value-corrupt], [crash] — the named models
    minus [duplicating] (indistinguishable from [lossy] for every
    bundled subject, which tolerates duplication by construction). *)

val run :
  ?budget:Budget.limits -> ?faults:(string * Model.t) list -> subject list -> t
(** Evaluate every subject × fault × property cell.  Each property check
    runs under a freshly armed [budget] on the current engine, so one
    pathological cell degrades to [Exhausted] while the rest complete. *)

val subjects : t -> string list
val props_of : t -> string -> string list
val find : t -> subject:string -> fault:string -> prop:string -> cell option

val broken_by : t -> subject:string -> fault:string -> baseline:string -> string list
(** Properties that hold under [baseline] but fail under [fault]. *)

val verdict_to_string : verdict -> string
(** [holds], [breaks], [exhausted:REASON] or [error]. *)

val pp : Format.formatter -> t -> unit
(** One table per subject: property rows × fault columns. *)

val to_json : t -> string
(** Deterministic machine-readable form — what the CI golden pins. *)
