(* First-class channel fault models (§6.2-6.3).

   A model is a set of independent fault capabilities the environment
   gets over a channel direction.  The paper's channel (§6.3) "allows
   loss, duplication, and detectable corruption of messages" — that is
   [lossy] here, and what every builder hard-wired before this module
   existed.  The other points of the lattice let the resilience matrix
   probe which property of a protocol depends on which assumption. *)

type t = {
  duplication : bool;
      (* deliver is repeatable ([avail := slot] as a plain statement);
         without it delivery consumes the slot *)
  loss : bool; (* drop: [avail := ⊥] *)
  corrupt_detect : bool;
      (* detectable corruption: the receiver sees ⊥ — per §6.2 this is
         observationally identical to loss, and maps to the same drop
         statement *)
  corrupt_value : bool;
      (* undetectable corruption: [avail] gets a syntactically valid
         value that need not be what was sent *)
  crash : bool; (* crash/stop: the channel may permanently stop delivering *)
}

let none =
  {
    duplication = false;
    loss = false;
    corrupt_detect = false;
    corrupt_value = false;
    crash = false;
  }

let perfect = none
let duplicating = { none with duplication = true }
let lossy = { none with duplication = true; loss = true }
let value_corrupt = { lossy with corrupt_value = true }
let crash_stop = { duplicating with crash = true }

let equal (a : t) (b : t) = a = b

(* Does the environment ever write ⊥ into [avail]? *)
let drops m = m.loss || m.corrupt_detect

let named =
  [
    ("perfect", perfect);
    ("duplicating", duplicating);
    ("lossy", lossy);
    ("value-corrupt", value_corrupt);
    ("crash", crash_stop);
  ]

let primitives =
  [
    ("dup", fun m -> { m with duplication = true });
    ("loss", fun m -> { m with loss = true });
    ("bot", fun m -> { m with corrupt_detect = true });
    ("value", fun m -> { m with corrupt_value = true });
    ("crash", fun m -> { m with crash = true });
  ]

let to_string m =
  match List.find_opt (fun (_, v) -> equal v m) named with
  | Some (name, _) -> name
  | None ->
      let parts =
        List.filter_map
          (fun (tag, sel) -> if sel m then Some tag else None)
          [
            ("dup", fun m -> m.duplication);
            ("loss", fun m -> m.loss);
            ("bot", fun m -> m.corrupt_detect);
            ("value", fun m -> m.corrupt_value);
            ("crash", fun m -> m.crash);
          ]
      in
      (* [perfect] is in [named], so parts is non-empty here *)
      String.concat "+" parts

let of_string s =
  let s = String.trim s in
  match List.assoc_opt s named with
  | Some m -> Ok m
  | None -> (
      let parts = String.split_on_char '+' s |> List.map String.trim in
      let rec go acc = function
        | [] -> Ok acc
        | p :: rest -> (
            match List.assoc_opt p primitives with
            | Some f -> go (f acc) rest
            | None ->
                Error
                  (Printf.sprintf
                     "unknown fault %S (expected a named model %s or a '+'-combination of %s)"
                     p
                     (String.concat "|" (List.map fst named))
                     (String.concat "|" (List.map fst primitives))))
      in
      match parts with
      | [ "" ] -> Error "empty fault model"
      | parts -> go none parts)

let pp fmt m = Format.pp_print_string fmt (to_string m)
