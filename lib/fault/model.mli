(** First-class channel fault models (§6.2-6.3).

    A model is a set of independent capabilities the environment has
    over a channel direction.  {!lossy} — loss + duplication (with
    detectable corruption folded into loss, as in §6.2) — is the
    paper's channel and the historical hard-wired behaviour of every
    protocol builder. *)

type t = {
  duplication : bool;
      (** deliver is repeatable; without it delivery consumes the slot *)
  loss : bool;  (** the environment may drop the in-flight message *)
  corrupt_detect : bool;
      (** detectable corruption: received as ⊥, observationally
          identical to loss (§6.2) — same drop statement *)
  corrupt_value : bool;
      (** undetectable corruption: a valid-looking wrong value *)
  crash : bool;  (** the channel may permanently stop delivering *)
}

val none : t
(** No faults, no duplication: a consuming, deliver-only channel. *)

val perfect : t
(** Alias of {!none}: every transmitted message is delivered exactly
    once (per slot overwrite). *)

val duplicating : t
(** Reliable but duplicating — the historical [~lossy:false] channel. *)

val lossy : t
(** Loss + duplication (+ ⊥-detectable corruption, which is the same
    statement): the paper's §6.3 channel, the historical default. *)

val value_corrupt : t
(** {!lossy} plus undetectable value corruption. *)

val crash_stop : t
(** {!duplicating} plus crash/stop. *)

val equal : t -> t -> bool

val drops : t -> bool
(** Does the environment ever write ⊥ into [avail]? *)

val named : (string * t) list
(** The named models above, in presentation order. *)

val of_string : string -> (t, string) result
(** A named model ([perfect], [duplicating], [lossy], [value-corrupt],
    [crash]) or a ['+']-separated combination of primitives [dup],
    [loss], [bot], [value], [crash] — e.g. ["loss+dup+value"]. *)

val to_string : t -> string
(** Canonical spelling; inverse of {!of_string} on its own output. *)

val pp : Format.formatter -> t -> unit
