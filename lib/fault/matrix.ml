open Kpt_predicate

(* The resilience matrix: re-verify each subject protocol's properties
   under each fault model and record which property survives which
   fault.  Subjects are closure-based so this module stays below the
   protocol builders in the dependency order — [Kpt_analysis.Resilience]
   instantiates it for the bundled protocols. *)

type verdict =
  | Holds
  | Fails
  | Exhausted of Budget.reason
  | Error of string (* the builder or checker rejected this fault model *)

type property = { prop : string; check : unit -> bool }
type subject = { subject : string; build : Model.t -> property list }

type cell = { subject : string; fault : string; prop : string; verdict : verdict }

type t = { faults : string list; cells : cell list }

let default_faults =
  List.filter (fun (n, _) -> n <> "duplicating") Model.named

let verdict_to_string = function
  | Holds -> "holds"
  | Fails -> "breaks"
  | Exhausted r -> "exhausted:" ^ Budget.reason_slug r
  | Error _ -> "error"

let run ?(budget = Budget.unlimited) ?(faults = default_faults) subjects =
  let cells =
    List.concat_map
      (fun (s : subject) ->
        List.concat_map
          (fun (fname, model) ->
            let cell prop verdict = { subject = s.subject; fault = fname; prop; verdict } in
            match s.build model with
            | props ->
                List.map
                  (fun (p : property) ->
                    cell p.prop
                      (match Engine.with_budget budget p.check with
                      | true -> Holds
                      | false -> Fails
                      | exception Budget.Exhausted r -> Exhausted r
                      | exception (Failure msg | Invalid_argument msg) -> Error msg))
                  props
            | exception (Failure msg | Invalid_argument msg) ->
                [ cell "(build)" (Error msg) ])
          faults)
      subjects
  in
  { faults = List.map fst faults; cells }

let subjects t =
  List.fold_left
    (fun acc c -> if List.mem c.subject acc then acc else acc @ [ c.subject ])
    [] t.cells

let props_of t subject =
  List.fold_left
    (fun acc c ->
      if c.subject = subject && not (List.mem c.prop acc) then acc @ [ c.prop ] else acc)
    [] t.cells

let find t ~subject ~fault ~prop =
  List.find_opt (fun c -> c.subject = subject && c.fault = fault && c.prop = prop) t.cells

(* Any property that holds under the paper's channel but not under
   [fault] — the "what did this fault break" view. *)
let broken_by t ~subject ~fault ~baseline =
  List.filter_map
    (fun prop ->
      match (find t ~subject ~fault:baseline ~prop, find t ~subject ~fault ~prop) with
      | Some { verdict = Holds; _ }, Some { verdict = Fails; _ } -> Some prop
      | _ -> None)
    (props_of t subject)

let cell_mark = function
  | Holds -> "ok"
  | Fails -> "BREAK"
  | Exhausted _ -> "exh"
  | Error _ -> "err"

let pp fmt t =
  let prop_w =
    List.fold_left (fun w c -> max w (String.length c.prop)) 8 t.cells
  in
  let col_w = List.fold_left (fun w f -> max w (String.length f)) 5 t.faults in
  List.iter
    (fun subject ->
      Format.fprintf fmt "@[<v>%s@," subject;
      Format.fprintf fmt "  %-*s" prop_w "";
      List.iter (fun f -> Format.fprintf fmt "  %-*s" col_w f) t.faults;
      Format.fprintf fmt "@,";
      List.iter
        (fun prop ->
          Format.fprintf fmt "  %-*s" prop_w prop;
          List.iter
            (fun fault ->
              let mark =
                match find t ~subject ~fault ~prop with
                | Some c -> cell_mark c.verdict
                | None -> "-"
              in
              Format.fprintf fmt "  %-*s" col_w mark)
            t.faults;
          Format.fprintf fmt "@,")
        (props_of t subject);
      Format.fprintf fmt "@]@.")
    (subjects t)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "{\n  \"faults\": [%s],\n"
    (String.concat ", " (List.map (fun f -> Printf.sprintf "\"%s\"" (json_escape f)) t.faults));
  pf "  \"cells\": [\n";
  List.iteri
    (fun i c ->
      pf "    { \"subject\": \"%s\", \"fault\": \"%s\", \"property\": \"%s\", \"verdict\": \"%s\" }%s\n"
        (json_escape c.subject) (json_escape c.fault) (json_escape c.prop)
        (json_escape (verdict_to_string c.verdict))
        (if i = List.length t.cells - 1 then "" else ","))
    t.cells;
  pf "  ]\n}\n";
  Buffer.contents b
