open Kpt_predicate
open Kpt_unity

(* Synthesise the environment statements a fault model grants over one
   channel direction, given the channel's slot/avail variables and its
   ⊥ encoding.  The statements follow the §6.3 shape — everything the
   environment does is an assignment to [avail] (plus, for a consuming
   deliver, the slot, and for crash, the up flag):

     deliver   avail := slot                 (repeatable ⇒ duplication)
     deliver₁  avail := slot ∥ slot := ⊥  if slot ≠ ⊥   (exactly-once)
     drop      avail := ⊥                   (loss / detectable corruption)
     corrupt   avail := c    if slot ≠ ⊥    (valid-looking wrong value)
     crash     up := false                  (deliver guarded by up)

   Statement names are [env_dlv_NAME] / [env_drop_NAME] — byte-identical
   to the historical hard-wired pair — plus [env_corr_NAME] and
   [env_crash_NAME]. *)

(* For builders sharing one crash flag across several channel
   directions: the single statement taking the network down. *)
let crash_stmt ~name up = Stmt.make ~name:("env_crash_" ^ name) [ (up, Expr.fls) ]

type channel_env = {
  statements : Stmt.t list;
  init : Expr.t list; (* extra init conjuncts (the crash flag starts up) *)
  up : Space.var option; (* the crash flag, when this call declared one *)
}

let env sp ~slot ~avail ~bot ?up ?(corrupt_to = 0) ~name (m : Model.t) =
  if corrupt_to < 0 || corrupt_to >= bot then
    invalid_arg "Inject.env: corrupt_to must be a valid non-\xe2\x8a\xa5 encoding";
  let open Expr in
  let owns_up = m.Model.crash && up = None in
  let up_var =
    if m.Model.crash then
      Some (match up with Some v -> v | None -> Space.bool_var sp (name ^ "_up"))
    else None
  in
  let guard ?extra () =
    (* deliver/corrupt run only while the channel is up *)
    match (up_var, extra) with
    | None, e -> e
    | Some u, None -> Some (var u)
    | Some u, Some e -> Some (var u &&& e)
  in
  let in_flight = not_ (var slot === nat bot) in
  let deliver =
    if m.Model.duplication then
      Stmt.make ~name:("env_dlv_" ^ name) ?guard:(guard ()) [ (avail, var slot) ]
    else
      (* consuming deliver: guarded on a message being in flight, so an
         empty slot cannot masquerade as a drop *)
      Stmt.make ~name:("env_dlv_" ^ name)
        ?guard:(guard ~extra:in_flight ())
        [ (avail, var slot); (slot, nat bot) ]
  in
  let drop =
    if Model.drops m then
      [ Stmt.make ~name:("env_drop_" ^ name) [ (avail, nat bot) ] ]
    else []
  in
  let corrupt =
    if m.Model.corrupt_value then
      [
        Stmt.make ~name:("env_corr_" ^ name)
          ?guard:(guard ~extra:in_flight ())
          [ (avail, nat corrupt_to) ];
      ]
    else []
  in
  let crash =
    match up_var with
    | Some u when owns_up -> [ Stmt.make ~name:("env_crash_" ^ name) [ (u, fls) ] ]
    | _ -> []
  in
  {
    statements = (deliver :: drop) @ corrupt @ crash;
    init = (if owns_up then [ var (Option.get up_var) ] else []);
    up = (if owns_up then up_var else None);
  }
