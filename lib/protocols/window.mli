(** A selective-repeat sliding-window protocol — the natural
    generalisation of the §6 family ([HZar] refines the infinite-state
    standard protocol into "several interesting finite state protocols";
    a window of size 1 degenerates to Stenning-style stop-and-wait).

    The network holds at most one copy of each element: a per-index
    capacity-1 channel (slot + avail, values in [A ∪ ⊥]).  The sender may
    (re)transmit any of the [w] lowest unacknowledged elements — that is
    the window — and slides on cumulative acks [j]; the receiver delivers
    in order and acknowledges cumulatively, exactly like Figure 4.

    Same specification, same knowledge content (the cumulative ack [z]
    is the [K_S(j ≥ k)] witness), more concurrency in flight. *)

open Kpt_predicate
open Kpt_unity

type t = {
  prog : Program.t;
  space : Space.t;
  params : Seqtrans.params;
  window : int;
  xs : Space.var array;
  ws : Space.var array;
  i : Space.var;  (** lowest unacknowledged index, [0..n] *)
  j : Space.var;  (** receiver's index, [0..n] *)
  z : Space.var;  (** sender's cumulative-ack register *)
  slots : Space.var array;   (** in-flight copy of element k ([a] = ⊥) *)
  avails : Space.var array;  (** deliverable copy of element k *)
  ack : Channel.t;
}

val make :
  ?lossy:bool -> ?fault:Kpt_fault.Model.t -> window:int -> Seqtrans.params -> t
(** @raise Invalid_argument unless [1 ≤ window]. *)

val safety : t -> Bdd.t
(** Eq. 34. *)

val liveness_holds : t -> k:int -> bool
(** Eq. 35 instance under fair leads-to. *)

val in_flight : t -> Space.state -> int
(** Number of elements currently on the network — bounded by the window
    in every reachable state (the window invariant, tested). *)

val simulate_steps : ?seed:int -> t -> int
(** Scheduler steps of a random-fair run until everything is delivered
    (1_000_000 = did not finish) — the windowed-pipelining measurement
    used by the benches. *)
