open Kpt_predicate
open Kpt_unity

(* ---- the n-station token ring ------------------------------------------- *)

type ring = {
  rprog : Program.t;
  rspace : Space.t;
  token : Space.var;
  busy : Space.var array;
}

let token_ring ~n =
  if n < 2 then invalid_arg "Ring.token_ring: n must be ≥ 2";
  let sp = Space.create () in
  let token = Space.nat_var sp "token" ~max:(n - 1) in
  let busy = Array.init n (fun k -> Space.bool_var sp (Printf.sprintf "busy%d" k)) in
  let open Expr in
  let stmts =
    List.concat
      (List.init n (fun k ->
           [
             Stmt.make
               ~name:(Printf.sprintf "acquire%d" k)
               ~guard:(var token === nat k &&& not_ (var busy.(k)))
               [ (busy.(k), tru) ];
             Stmt.make
               ~name:(Printf.sprintf "release%d" k)
               ~guard:(var token === nat k &&& var busy.(k))
               [ (busy.(k), fls); (token, nat ((k + 1) mod n)) ];
           ]))
  in
  let init = conj ((var token === nat 0) :: List.init n (fun k -> not_ (var busy.(k)))) in
  let rprog = Program.make sp ~name:(Printf.sprintf "token_ring_%d" n) ~init stmts in
  { rprog; rspace = sp; token; busy }

(* Token ring plus an audit monitor: each station bumps a shared saturating
   [log] counter while busy.  The monitors read [busy_k] but nothing reads
   [log] back, so the cone of influence of any busy/token property excludes
   the log — the slicing vehicle for the bench and tests (the plain ring is
   fully connected: every statement stays in every cone). *)
let monitored ~n =
  if n < 2 then invalid_arg "Ring.monitored: n must be ≥ 2";
  let sp = Space.create () in
  let token = Space.nat_var sp "token" ~max:(n - 1) in
  let busy = Array.init n (fun k -> Space.bool_var sp (Printf.sprintf "busy%d" k)) in
  let cap = (2 * n) - 1 in
  let log = Space.nat_var sp "log" ~max:cap in
  let open Expr in
  let stmts =
    List.concat
      (List.init n (fun k ->
           [
             Stmt.make
               ~name:(Printf.sprintf "acquire%d" k)
               ~guard:(var token === nat k &&& not_ (var busy.(k)))
               [ (busy.(k), tru) ];
             Stmt.make
               ~name:(Printf.sprintf "release%d" k)
               ~guard:(var token === nat k &&& var busy.(k))
               [ (busy.(k), fls); (token, nat ((k + 1) mod n)) ];
             Stmt.make
               ~name:(Printf.sprintf "monitor%d" k)
               ~guard:(var busy.(k) &&& not_ (var log === nat cap))
               [ (log, var log +! nat 1) ];
           ]))
  in
  let init =
    conj
      ((var token === nat 0) :: (var log === nat 0)
      :: List.init n (fun k -> not_ (var busy.(k))))
  in
  let rprog =
    Program.make sp ~name:(Printf.sprintf "monitored_ring_%d" n) ~init stmts
  in
  { rprog; rspace = sp; token; busy }

let mutex_ok r =
  let sp = r.rspace in
  let m = Space.manager sp in
  let n = Array.length r.busy in
  (* at most one station busy: no pair simultaneously busy *)
  Bdd.conj m
    (List.concat
       (List.init n (fun k ->
            List.init (n - k - 1) (fun d ->
                let j = k + d + 1 in
                Bdd.not_ m
                  (Bdd.and_ m
                     (Expr.compile_bool sp (Expr.var r.busy.(k)))
                     (Expr.compile_bool sp (Expr.var r.busy.(j))))))))

let holder_busy r =
  let sp = r.rspace in
  let open Expr in
  Expr.compile_bool sp
    (disj
       (List.init (Array.length r.busy) (fun k ->
            (var r.token === nat k) &&& var r.busy.(k))))

(* ---- the mirrored-counters stress instance ------------------------------ *)

type mirror = {
  mprog : Program.t;
  mspace : Space.t;
  left : Space.var array;
  right : Space.var array;
}

let mirror ~n ~width =
  if n < 2 then invalid_arg "Ring.mirror: n must be ≥ 2";
  if width < 1 then invalid_arg "Ring.mirror: width must be ≥ 1";
  let k = 1 lsl width in
  let sp = Space.create () in
  (* Adversarial declaration order: every left counter before every right
     one, and the right block reversed — under the static order the
     reachable set ⋀ l_i = r_i must thread all n counter values across
     the block boundary, a k^n-wide waist; the pairwise-interleaved order
     (the one sifting converges to) keeps it linear in n·width. *)
  let left = Array.init n (fun i -> Space.nat_var sp (Printf.sprintf "l%d" i) ~max:(k - 1)) in
  let right =
    Array.init n (fun i -> Space.nat_var sp (Printf.sprintf "r%d" (n - 1 - i)) ~max:(k - 1))
  in
  let right = Array.init n (fun i -> right.(n - 1 - i)) in
  let open Expr in
  let bump v = Ite (var v === nat (k - 1), nat 0, var v +! nat 1) in
  let stmts =
    List.init n (fun i ->
        Stmt.make
          ~name:(Printf.sprintf "step%d" i)
          [ (left.(i), bump left.(i)); (right.(i), bump right.(i)) ])
  in
  let init =
    conj
      (List.init n (fun i -> var left.(i) === nat 0)
      @ List.init n (fun i -> var right.(i) === nat 0))
  in
  let mprog = Program.make sp ~name:(Printf.sprintf "mirror_%d_%d" n width) ~init stmts in
  { mprog; mspace = sp; left; right }

let agreement mr =
  let sp = mr.mspace in
  let open Expr in
  Expr.compile_bool sp
    (conj
       (List.init (Array.length mr.left) (fun i -> var mr.left.(i) === var mr.right.(i))))
