(** Faulty communication channels as UNITY environment statements (§5:
    "Message communication can be modeled by sequence variables…"; §6.3:
    the channel "allows loss, duplication, and detectable corruption of
    messages").

    A channel direction consists of:
    - a {e slot}: the message most recently transmitted (what is in
      flight), written by the protocol's [transmit];
    - an {e avail} register: what a [receive] would return right now,
      written by the {e environment}'s two statements —
      {e deliver} ([avail := slot]; repeatable, hence {b duplication})
      and {e drop} ([avail := ⊥]; {b loss}, or {b corruption} received
      detectably as ⊥, per §6.2's [receive]).

    The protocol's own register ([z] / [z'] in Figure 4) is declared by
    the protocol and updated by embedding {!receive} ([reg := avail])
    inside its statements — exactly the paper's
    [… ∥ receive(z')] composition.  This placement is load-bearing: the
    stability properties (eqs. 55–56) hold only because a process
    overwrites its register exclusively in its own guarded statements.

    Values are bounded naturals with a distinguished top value for ⊥;
    {!codec} centralises the encoding.  The capacity-1 slot gives the
    paper's history properties St-1/St-2 (anything received was sent)
    by construction. *)

open Kpt_predicate
open Kpt_unity

type codec = {
  card : int;  (** total encoded values, including ⊥ *)
  bot : int;  (** the encoding of ⊥ (= card - 1) *)
  weights : int list;  (** positional weight of each message component *)
  enc : int list -> int;  (** encode message components *)
  dec : int -> int list;  (** decode (undefined on ⊥) *)
}

val nat_codec : max:int -> codec
(** Messages are naturals [0..max] plus ⊥ (the paper's ack channel). *)

val pair_codec : n:int -> a:int -> codec
(** Messages are pairs [(k, α)] with [k < n], [α < a], plus ⊥ (the data
    channel carrying [(index, value)]). *)

type t = {
  codec : codec;
  slot : Space.var;  (** message in flight *)
  avail : Space.var;  (** what receive would return now *)
}

val declare : Space.t -> name:string -> codec -> t
(** Declare [name_slot] and [name_avail]. *)

val register : Space.t -> name:string -> codec -> Space.var
(** Declare a protocol-owned receive register of the right range. *)

val transmit : t -> Expr.t list -> Space.var * Expr.t
(** Assignment performing [transmit(msg)]: overwrite the slot.  The
    encoding is linear in the codec's weights. *)

val receive : t -> Space.var -> Space.var * Expr.t
(** Assignment performing [receive(reg)]: [reg := avail].  Embed in the
    protocol statement alongside its other assignments. *)

val deliver_stmt : t -> name:string -> Stmt.t
(** Environment: [avail := slot]. *)

val drop_stmt : t -> name:string -> Stmt.t
(** Environment: [avail := ⊥]. *)

val init_expr : t -> Expr.t
(** [slot = ⊥ ∧ avail = ⊥]. *)

val mul_const : int -> Expr.t -> Expr.t
(** [c · e] by repeated addition — for building message predicates that
    must agree with a codec's linear encoding. *)

val env :
  Space.t ->
  ?up:Space.var ->
  ?corrupt_to:int ->
  t ->
  name:string ->
  Kpt_fault.Model.t ->
  Kpt_fault.Inject.channel_env
(** The environment statements a fault model grants over this channel —
    {!Kpt_fault.Inject.env} on the channel's slot/avail/⊥.  For
    {!Kpt_fault.Model.lossy} this is exactly the historical
    [deliver_stmt] + [drop_stmt] pair (names [env_dlv_NAME] /
    [env_drop_NAME]). *)

val resolve_fault : lossy:bool -> Kpt_fault.Model.t option -> Kpt_fault.Model.t
(** The builders' shared parameter resolution: an explicit [?fault]
    wins; otherwise [~lossy] selects {!Kpt_fault.Model.lossy} or
    {!Kpt_fault.Model.duplicating} (the two historical channels). *)

val fault_suffix : Kpt_fault.Model.t -> string
(** Program-name suffix for a fault model; the historical models keep
    their historical spellings (["_lossy"] and [""]). *)
