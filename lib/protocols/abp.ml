open Kpt_predicate
open Kpt_unity

type t = {
  prog : Program.t;
  space : Space.t;
  params : Seqtrans.params;
  xs : Space.var array;
  ws : Space.var array;
  y : Space.var;
  i : Space.var;
  j : Space.var;
  sb : Space.var;
  rb : Space.var;
  z : Space.var;
  zp : Space.var;
  data : Channel.t;
  ack : Channel.t;
}

let make ?(lossy = true) ?fault ({ Seqtrans.n; a } as params) =
  let fault = Channel.resolve_fault ~lossy fault in
  if n < 2 || a < 2 then invalid_arg "Abp.make: need n ≥ 2 and a ≥ 2";
  let sp = Space.create () in
  let xs = Array.init n (fun k -> Space.nat_var sp (Printf.sprintf "x%d" k) ~max:(a - 1)) in
  let y = Space.nat_var sp "y" ~max:(a - 1) in
  let i = Space.nat_var sp "i" ~max:(n - 1) in
  let sb = Space.nat_var sp "sb" ~max:1 in
  let ws = Array.init n (fun k -> Space.nat_var sp (Printf.sprintf "w%d" k) ~max:(a - 1)) in
  let j = Space.nat_var sp "j" ~max:n in
  let rb = Space.nat_var sp "rb" ~max:1 in
  (* data messages: (bit, value); acks: a bit *)
  let dcodec = Channel.pair_codec ~n:2 ~a in
  let acodec = Channel.nat_codec ~max:1 in
  let data = Channel.declare sp ~name:"data" dcodec in
  let ack = Channel.declare sp ~name:"ack" acodec in
  let z = Channel.register sp ~name:"z" acodec in
  let zp = Channel.register sp ~name:"zp" dcodec in
  let open Expr in
  let acked = var z === var sb in
  let snd_tx =
    Stmt.make ~name:"snd_tx" ~guard:(not_ acked)
      [ Channel.transmit data [ var sb; var y ]; Channel.receive ack z ]
  in
  let snd_adv =
    Stmt.make ~name:"snd_adv"
      ~guard:(acked &&& (var i <<< nat (n - 1)))
      [
        (y, select xs (var i +! nat 1));
        (i, var i +! nat 1);
        (sb, nat 1 -! var sb);
        Channel.receive ack z;
      ]
  in
  (* zp = (rb, α): a fresh in-order message. *)
  let zp_is alpha =
    (var zp === Channel.mul_const a (var rb) +! nat alpha) &&& (var j <<< nat n)
  in
  let rcv_dlv alpha =
    Stmt.make
      ~name:(Printf.sprintf "rcv_dlv%d" alpha)
      ~guard:(zp_is alpha)
      (Stmt.array_write ws ~index:(var j) (nat alpha)
      @ [ (j, var j +! nat 1); (rb, nat 1 -! var rb); Channel.receive data zp ])
  in
  let rcv_ack =
    (* re-acknowledge the last accepted stamp: ¬rb *)
    Stmt.make ~name:"rcv_ack"
      ~guard:(not_ (disj (List.init a zp_is)))
      [ Channel.transmit ack [ nat 1 -! var rb ]; Channel.receive data zp ]
  in
  (* one crash flag for the whole network: both directions stop together *)
  let up =
    if fault.Kpt_fault.Model.crash then Some (Space.bool_var sp "net_up") else None
  in
  let denv = Channel.env sp ?up data ~name:"data" fault in
  let aenv = Channel.env sp ?up ack ~name:"ack" fault in
  let env =
    denv.Kpt_fault.Inject.statements @ aenv.Kpt_fault.Inject.statements
    @ (match up with Some u -> [ Kpt_fault.Inject.crash_stmt ~name:"net" u ] | None -> [])
  in
  let fault_init = match up with Some u -> [ Expr.var u ] | None -> [] in
  let init =
    conj
      ([
         var y === var xs.(0);
         var i === nat 0;
         var j === nat 0;
         var sb === nat 0;
         var rb === nat 0;
         var z === nat acodec.Channel.bot;
         var zp === nat dcodec.Channel.bot;
       ]
      @ List.init n (fun k -> var ws.(k) === nat 0)
      @ [ Channel.init_expr data; Channel.init_expr ack ]
      @ fault_init)
  in
  let sender = Process.make "Sender" (Array.to_list xs @ [ y; i; sb; z ]) in
  let receiver = Process.make "Receiver" (Array.to_list ws @ [ j; rb; zp ]) in
  let prog =
    Program.make sp
      ~name:("abp" ^ Channel.fault_suffix fault)
      ~init
      ~processes:[ sender; receiver ]
      ([ snd_tx; snd_adv ] @ List.init a rcv_dlv @ [ rcv_ack ] @ env)
  in
  { prog; space = sp; params; xs; ws; y; i; j; sb; rb; z; zp; data; ack }

let safety t =
  let { Seqtrans.n; _ } = t.params in
  Expr.compile_bool t.space
    (Expr.conj
       (List.init n (fun k ->
            Expr.((var t.j >>> nat k) ==> (var t.ws.(k) === var t.xs.(k))))))

let liveness_holds t ~k =
  Kpt_logic.Props.leads_to t.prog
    (Expr.compile_bool t.space Expr.(var t.j === nat k))
    (Expr.compile_bool t.space Expr.(var t.j >>> nat k))
