open Kpt_predicate
open Kpt_unity

type t = {
  prog : Program.t;
  space : Space.t;
  params : Seqtrans.params;
  xs : Space.var array;
  ws : Space.var array;
  y : Space.var;
  i : Space.var;
  j : Space.var;
  z : Space.var;
  zp : Space.var;
  data : Channel.t;
  ack : Channel.t;
}

let make ?(lossy = true) ?fault ({ Seqtrans.n; a } as params) =
  let fault = Channel.resolve_fault ~lossy fault in
  if n < 2 || a < 2 then invalid_arg "Stenning.make: need n ≥ 2 and a ≥ 2";
  let sp = Space.create () in
  let xs = Array.init n (fun k -> Space.nat_var sp (Printf.sprintf "x%d" k) ~max:(a - 1)) in
  let y = Space.nat_var sp "y" ~max:(a - 1) in
  let i = Space.nat_var sp "i" ~max:(n - 1) in
  let ws = Array.init n (fun k -> Space.nat_var sp (Printf.sprintf "w%d" k) ~max:(a - 1)) in
  let j = Space.nat_var sp "j" ~max:n in
  let dcodec = Channel.pair_codec ~n ~a in
  (* acks carry the highest delivered index, 0..n-1 *)
  let acodec = Channel.nat_codec ~max:(n - 1) in
  let data = Channel.declare sp ~name:"data" dcodec in
  let ack = Channel.declare sp ~name:"ack" acodec in
  let z = Channel.register sp ~name:"z" acodec in
  let zp = Channel.register sp ~name:"zp" dcodec in
  let open Expr in
  (* the current element has been delivered when the ack names it *)
  let acked = var z === var i &&& (var z <== nat (n - 1)) in
  let snd_tx =
    Stmt.make ~name:"snd_tx" ~guard:(not_ acked)
      [ Channel.transmit data [ var i; var y ]; Channel.receive ack z ]
  in
  let snd_adv =
    Stmt.make ~name:"snd_adv"
      ~guard:(acked &&& (var i <<< nat (n - 1)))
      [ (y, select xs (var i +! nat 1)); (i, var i +! nat 1); Channel.receive ack z ]
  in
  let zp_is_j alpha =
    (var zp === Channel.mul_const a (var j) +! nat alpha) &&& (var j <<< nat n)
  in
  let rcv_write alpha =
    Stmt.make
      ~name:(Printf.sprintf "rcv_write%d" alpha)
      ~guard:(zp_is_j alpha)
      (Stmt.array_write ws ~index:(var j) (nat alpha)
      @ [ (j, var j +! nat 1); Channel.receive data zp ])
  in
  let rcv_ack =
    (* acknowledge the highest delivered index, once something was delivered *)
    Stmt.make ~name:"rcv_ack"
      ~guard:((var j >>> nat 0) &&& not_ (disj (List.init a zp_is_j)))
      [ Channel.transmit ack [ var j -! nat 1 ]; Channel.receive data zp ]
  in
  let rcv_idle =
    (* before the first delivery there is nothing to acknowledge, but the
       receiver still polls the channel *)
    Stmt.make ~name:"rcv_idle"
      ~guard:((var j === nat 0) &&& not_ (disj (List.init a zp_is_j)))
      [ Channel.receive data zp ]
  in
  (* one crash flag for the whole network: both directions stop together *)
  let up =
    if fault.Kpt_fault.Model.crash then Some (Space.bool_var sp "net_up") else None
  in
  let denv = Channel.env sp ?up data ~name:"data" fault in
  let aenv = Channel.env sp ?up ack ~name:"ack" fault in
  let env =
    denv.Kpt_fault.Inject.statements @ aenv.Kpt_fault.Inject.statements
    @ (match up with Some u -> [ Kpt_fault.Inject.crash_stmt ~name:"net" u ] | None -> [])
  in
  let fault_init = match up with Some u -> [ Expr.var u ] | None -> [] in
  let init =
    conj
      ([
         var y === var xs.(0);
         var i === nat 0;
         var j === nat 0;
         var z === nat acodec.Channel.bot;
         var zp === nat dcodec.Channel.bot;
       ]
      @ List.init n (fun k -> var ws.(k) === nat 0)
      @ [ Channel.init_expr data; Channel.init_expr ack ]
      @ fault_init)
  in
  let sender = Process.make "Sender" (Array.to_list xs @ [ y; i; z ]) in
  let receiver = Process.make "Receiver" (Array.to_list ws @ [ j; zp ]) in
  let prog =
    Program.make sp
      ~name:("stenning" ^ Channel.fault_suffix fault)
      ~init
      ~processes:[ sender; receiver ]
      ([ snd_tx; snd_adv ] @ List.init a rcv_write @ [ rcv_ack; rcv_idle ] @ env)
  in
  { prog; space = sp; params; xs; ws; y; i; j; z; zp; data; ack }

let safety t =
  let { Seqtrans.n; _ } = t.params in
  Expr.compile_bool t.space
    (Expr.conj
       (List.init n (fun k ->
            Expr.((var t.j >>> nat k) ==> (var t.ws.(k) === var t.xs.(k))))))

let liveness_holds t ~k =
  Kpt_logic.Props.leads_to t.prog
    (Expr.compile_bool t.space Expr.(var t.j === nat k))
    (Expr.compile_bool t.space Expr.(var t.j >>> nat k))
