open Kpt_predicate
open Kpt_unity

type params = { n : int; a : int }

let check_params { n; a } =
  if n < 2 then invalid_arg "Seqtrans: horizon n must be ≥ 2";
  if a < 2 then invalid_arg "Seqtrans: alphabet size a must be ≥ 2 (no a priori knowledge)"

(* ---- the standard protocol (Figure 4) ---------------------------------- *)

type standard = {
  sprog : Program.t;
  sspace : Space.t;
  sparams : params;
  xs : Space.var array;
  ws : Space.var array;
  y : Space.var;
  i : Space.var;
  j : Space.var;
  z : Space.var;
  zp : Space.var;
  data : Channel.t;
  ack : Channel.t;
}

let standard ?(lossy = true) ?fault ({ n; a } as params) =
  check_params params;
  let fault = Channel.resolve_fault ~lossy fault in
  let sp = Space.create () in
  let xs = Array.init n (fun k -> Space.nat_var sp (Printf.sprintf "x%d" k) ~max:(a - 1)) in
  let y = Space.nat_var sp "y" ~max:(a - 1) in
  let i = Space.nat_var sp "i" ~max:(n - 1) in
  let ws = Array.init n (fun k -> Space.nat_var sp (Printf.sprintf "w%d" k) ~max:(a - 1)) in
  let j = Space.nat_var sp "j" ~max:n in
  let dcodec = Channel.pair_codec ~n ~a in
  let acodec = Channel.nat_codec ~max:n in
  let data = Channel.declare sp ~name:"data" dcodec in
  let ack = Channel.declare sp ~name:"ack" acodec in
  let z = Channel.register sp ~name:"z" acodec in
  let zp = Channel.register sp ~name:"zp" dcodec in
  let open Expr in
  (* z = i + 1: everything at or below i is acknowledged. *)
  let acked = var z === var i +! nat 1 in
  let snd_tx =
    Stmt.make ~name:"snd_tx" ~guard:(not_ acked)
      [ Channel.transmit data [ var i; var y ]; Channel.receive ack z ]
  in
  let snd_adv =
    Stmt.make ~name:"snd_adv"
      ~guard:(acked &&& (var i <<< nat (n - 1)))
      [ (y, select xs (var i +! nat 1)); (i, var i +! nat 1); Channel.receive ack z ]
  in
  (* z' = (j, α): the receive register holds the next needed element.  The
     j < n conjunct keeps the encoding honest: (n, α) is not a message. *)
  let zp_is_j alpha =
    (var zp === Channel.mul_const a (var j) +! nat alpha) &&& (var j <<< nat n)
  in
  let rcv_write alpha =
    Stmt.make
      ~name:(Printf.sprintf "rcv_write%d" alpha)
      ~guard:(zp_is_j alpha)
      (Stmt.array_write ws ~index:(var j) (nat alpha)
      @ [ (j, var j +! nat 1); Channel.receive data zp ])
  in
  let rcv_ack =
    Stmt.make ~name:"rcv_ack"
      ~guard:(not_ (disj (List.init a zp_is_j)))
      [ Channel.transmit ack [ var j ]; Channel.receive data zp ]
  in
  (* one crash flag for the whole network: both directions stop together *)
  let up =
    if fault.Kpt_fault.Model.crash then Some (Space.bool_var sp "net_up") else None
  in
  let denv = Channel.env sp ?up data ~name:"data" fault in
  let aenv = Channel.env sp ?up ack ~name:"ack" fault in
  let env =
    denv.Kpt_fault.Inject.statements @ aenv.Kpt_fault.Inject.statements
    @ (match up with Some u -> [ Kpt_fault.Inject.crash_stmt ~name:"net" u ] | None -> [])
  in
  let fault_init = match up with Some u -> [ Expr.var u ] | None -> [] in
  let init =
    conj
      ([
         var y === var xs.(0);
         var i === nat 0;
         var j === nat 0;
         var z === nat acodec.Channel.bot;
         var zp === nat dcodec.Channel.bot;
       ]
      @ List.init n (fun k -> var ws.(k) === nat 0)
      @ [ Channel.init_expr data; Channel.init_expr ack ]
      @ fault_init)
  in
  let sender = Process.make "Sender" (Array.to_list xs @ [ y; i; z ]) in
  let receiver = Process.make "Receiver" (Array.to_list ws @ [ zp; j ]) in
  let prog =
    Program.make sp
      ~name:("seqtrans_standard" ^ Channel.fault_suffix fault)
      ~init
      ~processes:[ sender; receiver ]
      ([ snd_tx; snd_adv ] @ List.init a rcv_write @ [ rcv_ack ] @ env)
  in
  { sprog = prog; sspace = sp; sparams = params; xs; ws; y; i; j; z; zp; data; ack }

let bp st e = Expr.compile_bool st.sspace e

let spec_safety st =
  let { n; _ } = st.sparams in
  bp st
    (Expr.conj
       (List.init n (fun k ->
            Expr.((var st.j >>> nat k) ==> (var st.ws.(k) === var st.xs.(k))))))

let spec_liveness_holds st ~k =
  Kpt_logic.Props.leads_to st.sprog
    (bp st Expr.(var st.j === nat k))
    (bp st Expr.(var st.j >>> nat k))

(* z ≥ k with z ≠ ⊥ : z ≤ n ∧ z ≥ k. *)
let z_ge st k =
  let { n; _ } = st.sparams in
  Expr.((var st.z <== nat n) &&& (var st.z >== nat k))

let inv54 st ~k = bp st Expr.(z_ge st k ==> (var st.j >== nat k))

let cand_kr_expr st ~k ~alpha =
  let { a; _ } = st.sparams in
  Expr.(
    ((var st.j === nat k) &&& (var st.zp === nat ((k * a) + alpha)))
    ||| ((var st.j >>> nat k) &&& (var st.ws.(k) === nat alpha)))

let cand_kr st ~k ~alpha = bp st (cand_kr_expr st ~k ~alpha)

let cand_kskr_expr st ~k =
  Expr.(((var st.i === nat k) &&& (var st.z === nat (k + 1))) ||| (var st.i >>> nat k))

let cand_kskr st ~k = bp st (cand_kskr_expr st ~k)
let cand_ksj st ~k = bp st (z_ge st k)

let inv61 st ~k ~alpha =
  bp st Expr.(cand_kr_expr st ~k ~alpha ==> (var st.xs.(k) === nat alpha))

let inv62 st ~k = bp st Expr.(cand_kskr_expr st ~k ==> (var st.j >>> nat k))

let real_kr st ~k ~alpha =
  Kpt_core.Knowledge.knows_in st.sprog "Receiver"
    (bp st Expr.(var st.xs.(k) === nat alpha))

let real_kskr st ~k =
  let { a; _ } = st.sparams in
  let m = Space.manager st.sspace in
  let krx = Bdd.disj m (List.init a (fun alpha -> real_kr st ~k ~alpha)) in
  Kpt_core.Knowledge.knows_in st.sprog "Sender" krx

let stable55_holds st ~k = Kpt_logic.Props.stable st.sprog (cand_kskr st ~k)

let stable56_holds st ~k ~alpha =
  Kpt_logic.Props.stable st.sprog (cand_kr st ~k ~alpha)

(* ---- the abstract knowledge-based protocol (Figure 3) ------------------ *)

type abstract = {
  aprog : Program.t;
  aspace : Space.t;
  aparams : params;
  axs : Space.var array;
  aws : Space.var array;
  ay : Space.var;
  ai : Space.var;
  aj : Space.var;
  kr : Space.var array array;
  kskr : Space.var array;
  ksj : Space.var array;
}

let abstract_kbp ({ n; a } as params) =
  check_params params;
  let sp = Space.create () in
  let xs = Array.init n (fun k -> Space.nat_var sp (Printf.sprintf "x%d" k) ~max:(a - 1)) in
  let y = Space.nat_var sp "y" ~max:(a - 1) in
  let i = Space.nat_var sp "i" ~max:(n - 1) in
  let ws = Array.init n (fun k -> Space.nat_var sp (Printf.sprintf "w%d" k) ~max:(a - 1)) in
  let j = Space.nat_var sp "j" ~max:n in
  let kr =
    Array.init n (fun k ->
        Array.init a (fun alpha -> Space.bool_var sp (Printf.sprintf "kR_%d_%d" k alpha)))
  in
  let kskr = Array.init n (fun k -> Space.bool_var sp (Printf.sprintf "kSKR_%d" k)) in
  let ksj = Array.init (n + 1) (fun k -> Space.bool_var sp (Printf.sprintf "kSj_%d" k)) in
  let open Expr in
  let snd_adv =
    Stmt.make ~name:"snd_adv"
      ~guard:(select kskr (var i) &&& (var i <<< nat (n - 1)))
      [ (y, select xs (var i +! nat 1)); (i, var i +! nat 1) ]
  in
  let rcv_write alpha =
    let col = Array.init n (fun k -> kr.(k).(alpha)) in
    Stmt.make
      ~name:(Printf.sprintf "rcv_write%d" alpha)
      ~guard:(select col (var j) &&& (var j <<< nat n))
      (Stmt.array_write ws ~index:(var j) (nat alpha) @ [ (j, var j +! nat 1) ])
  in
  (* Oracle: the data message (i, y) gets through — the receiver learns
     the value currently on offer (Kbp-1's canonical channel). *)
  let or_data =
    let assigns =
      List.concat
        (List.init n (fun k ->
             List.init a (fun alpha ->
                 ( kr.(k).(alpha),
                   var kr.(k).(alpha) ||| ((var i === nat k) &&& (var y === nat alpha)) ))))
    in
    Stmt.make ~name:"or_data" assigns
  in
  (* Oracle: the ack message (j) gets through — the sender learns j ≥ k
     for every k ≤ j, and (via invariant 37) that the receiver knows
     every element below j (Kbp-2's canonical channel). *)
  let or_ack =
    let assigns =
      List.init n (fun k -> (kskr.(k), var kskr.(k) ||| (var j >>> nat k)))
      @ List.init (n + 1) (fun k -> (ksj.(k), var ksj.(k) ||| (var j >== nat k)))
    in
    Stmt.make ~name:"or_ack" assigns
  in
  let init =
    conj
      ([ var y === var xs.(0); var i === nat 0; var j === nat 0 ]
      @ List.init n (fun k -> var ws.(k) === nat 0)
      @ List.concat
          (List.init n (fun k -> List.init a (fun alpha -> not_ (var kr.(k).(alpha)))))
      @ List.init n (fun k -> not_ (var kskr.(k)))
      @ List.init (n + 1) (fun k -> not_ (var ksj.(k))))
  in
  let sender =
    Process.make "Sender"
      (Array.to_list xs @ [ y; i ] @ Array.to_list kskr @ Array.to_list ksj)
  in
  let receiver =
    Process.make "Receiver"
      (Array.to_list ws @ [ j ] @ List.concat_map Array.to_list (Array.to_list kr))
  in
  let prog =
    Program.make sp ~name:"seqtrans_kbp" ~init
      ~processes:[ sender; receiver ]
      ([ snd_adv ] @ List.init a rcv_write @ [ or_data; or_ack ])
  in
  {
    aprog = prog;
    aspace = sp;
    aparams = params;
    axs = xs;
    aws = ws;
    ay = y;
    ai = i;
    aj = j;
    kr;
    kskr;
    ksj;
  }

let abp st e = Expr.compile_bool st.aspace e

let a_spec_safety st =
  let { n; _ } = st.aparams in
  abp st
    (Expr.conj
       (List.init n (fun k ->
            Expr.((var st.aj >>> nat k) ==> (var st.aws.(k) === var st.axs.(k))))))

let a_spec_liveness_holds st ~k =
  Kpt_logic.Props.leads_to st.aprog
    (abp st Expr.(var st.aj === nat k))
    (abp st Expr.(var st.aj >>> nat k))

let a_kr st ~k ~alpha = abp st (Expr.var st.kr.(k).(alpha))

let a_krx st ~k =
  let { a; _ } = st.aparams in
  abp st (Expr.disj (List.init a (fun alpha -> Expr.var st.kr.(k).(alpha))))

let a_kskr st ~k = abp st (Expr.var st.kskr.(k))
let a_ksj st ~k = abp st (Expr.var st.ksj.(k))
let a_j_eq st k = abp st Expr.(var st.aj === nat k)
let a_j_gt st k = abp st Expr.(var st.aj >>> nat k)
let a_i_eq st k = abp st Expr.(var st.ai === nat k)
let a_i_gt st k = abp st Expr.(var st.ai >>> nat k)
let a_i_ge st k = abp st Expr.(var st.ai >== nat k)
let a_y_eq st alpha = abp st Expr.(var st.ay === nat alpha)
