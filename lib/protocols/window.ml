open Kpt_predicate
open Kpt_unity

type t = {
  prog : Program.t;
  space : Space.t;
  params : Seqtrans.params;
  window : int;
  xs : Space.var array;
  ws : Space.var array;
  i : Space.var;
  j : Space.var;
  z : Space.var;
  slots : Space.var array;
  avails : Space.var array;
  ack : Channel.t;
}

let make ?(lossy = true) ?fault ~window ({ Seqtrans.n; a } as params) =
  let fault = Channel.resolve_fault ~lossy fault in
  if window < 1 then invalid_arg "Window.make: window must be ≥ 1";
  if n < 2 || a < 2 then invalid_arg "Window.make: need n ≥ 2 and a ≥ 2";
  let sp = Space.create () in
  let xs = Array.init n (fun k -> Space.nat_var sp (Printf.sprintf "x%d" k) ~max:(a - 1)) in
  let i = Space.nat_var sp "i" ~max:n in
  let ws = Array.init n (fun k -> Space.nat_var sp (Printf.sprintf "w%d" k) ~max:(a - 1)) in
  let j = Space.nat_var sp "j" ~max:n in
  (* per-element network: value α < a, or a = ⊥ *)
  let slots = Array.init n (fun k -> Space.nat_var sp (Printf.sprintf "net%d" k) ~max:a) in
  let avails = Array.init n (fun k -> Space.nat_var sp (Printf.sprintf "avl%d" k) ~max:a) in
  let acodec = Channel.nat_codec ~max:n in
  let ack = Channel.declare sp ~name:"ack" acodec in
  let z = Channel.register sp ~name:"z" acodec in
  let open Expr in
  let snd_tx o =
    Stmt.make
      ~name:(Printf.sprintf "snd_tx%d" o)
      ~guard:(var i +! nat o <<< nat n)
      (Stmt.array_write slots
         ~index:(var i +! nat o)
         (select xs (var i +! nat o))
      @ [ Channel.receive ack z ])
  in
  let snd_adv =
    Stmt.make ~name:"snd_adv"
      ~guard:((var z <== nat n) &&& (var z >>> var i))
      [ (i, var z); Channel.receive ack z ]
  in
  let rcv_write alpha =
    Stmt.make
      ~name:(Printf.sprintf "rcv_write%d" alpha)
      ~guard:((select avails (var j) === nat alpha) &&& (var j <<< nat n))
      (Stmt.array_write ws ~index:(var j) (nat alpha) @ [ (j, var j +! nat 1) ])
  in
  let rcv_ack = Stmt.make ~name:"rcv_ack" [ Channel.transmit ack [ var j ] ] in
  (* one crash flag for the whole network: every cell and the ack
     direction stop together *)
  let up =
    if fault.Kpt_fault.Model.crash then Some (Space.bool_var sp "net_up") else None
  in
  let cell_envs =
    List.init n (fun k ->
        Kpt_fault.Inject.env sp ~slot:slots.(k) ~avail:avails.(k) ~bot:a ?up
          ~name:(string_of_int k) fault)
  in
  let aenv = Channel.env sp ?up ack ~name:"ack" fault in
  let env =
    List.concat_map (fun e -> e.Kpt_fault.Inject.statements) cell_envs
    @ aenv.Kpt_fault.Inject.statements
    @ (match up with Some u -> [ Kpt_fault.Inject.crash_stmt ~name:"net" u ] | None -> [])
  in
  let fault_init = match up with Some u -> [ Expr.var u ] | None -> [] in
  let init =
    conj
      ([ var i === nat 0; var j === nat 0; var z === nat acodec.Channel.bot ]
      @ List.init n (fun k -> var ws.(k) === nat 0)
      @ List.init n (fun k -> var slots.(k) === nat a)
      @ List.init n (fun k -> var avails.(k) === nat a)
      @ [ Channel.init_expr ack ]
      @ fault_init)
  in
  let sender = Process.make "Sender" (Array.to_list xs @ [ i; z ]) in
  let receiver = Process.make "Receiver" (Array.to_list ws @ [ j ]) in
  let prog =
    Program.make sp
      ~name:(Printf.sprintf "window%d%s" window (Channel.fault_suffix fault))
      ~init
      ~processes:[ sender; receiver ]
      (List.init window snd_tx @ [ snd_adv ] @ List.init a rcv_write @ [ rcv_ack ] @ env)
  in
  { prog; space = sp; params; window; xs; ws; i; j; z; slots; avails; ack }

let safety t =
  let { Seqtrans.n; _ } = t.params in
  Expr.compile_bool t.space
    (Expr.conj
       (List.init n (fun k ->
            Expr.((var t.j >>> nat k) ==> (var t.ws.(k) === var t.xs.(k))))))

let liveness_holds t ~k =
  Kpt_logic.Props.leads_to t.prog
    (Expr.compile_bool t.space Expr.(var t.j === nat k))
    (Expr.compile_bool t.space Expr.(var t.j >>> nat k))

let in_flight t st =
  let { Seqtrans.n; a } = t.params in
  let count = ref 0 in
  for k = 0 to n - 1 do
    if k >= st.(Space.idx t.i) && st.(Space.idx t.slots.(k)) <> a then incr count
  done;
  !count

let simulate_steps ?(seed = 1) t =
  let sp = t.space in
  let { Seqtrans.n; a } = t.params in
  let rng = Stdlib.Random.State.make [| seed |] in
  let nvars = List.length (Space.vars sp) in
  let state = ref (Array.make nvars 0) in
  Array.iter (fun x -> !state.(Space.idx x) <- Stdlib.Random.State.int rng a) t.xs;
  !state.(Space.idx t.z) <- t.ack.Channel.codec.Channel.bot;
  Array.iter (fun s -> !state.(Space.idx s) <- a) t.slots;
  Array.iter (fun s -> !state.(Space.idx s) <- a) t.avails;
  !state.(Space.idx t.ack.Channel.slot) <- t.ack.Channel.codec.Channel.bot;
  !state.(Space.idx t.ack.Channel.avail) <- t.ack.Channel.codec.Channel.bot;
  let stmts = Array.of_list (Program.statements t.prog) in
  let steps = ref 0 in
  while !state.(Space.idx t.j) < n && !steps < 1_000_000 do
    let s = stmts.(Stdlib.Random.State.int rng (Array.length stmts)) in
    state := Stmt.exec sp s !state;
    incr steps
  done;
  !steps
