(** The alternating bit protocol [BSW69] — the classic finite-state
    refinement of the sequence transmission problem that the paper's §6
    cites as a member of the protocol family obtained from the
    knowledge-based protocol.

    Sequence numbers shrink to a single bit: the sender stamps every data
    message with its bit [sb] and retransmits until an ack carrying [sb]
    arrives, then flips [sb] and advances; the receiver delivers a
    message exactly when its stamp matches the expected bit [rb], flips
    [rb], and (re)acknowledges the last accepted stamp.  Correct over
    channels that lose and duplicate but do not reorder — which is
    precisely what the capacity-1 {!Channel} model provides. *)

open Kpt_predicate
open Kpt_unity

type t = {
  prog : Program.t;
  space : Space.t;
  params : Seqtrans.params;
  xs : Space.var array;
  ws : Space.var array;
  y : Space.var;
  i : Space.var;
  j : Space.var;
  sb : Space.var;  (** sender's alternating bit *)
  rb : Space.var;  (** receiver's expected bit *)
  z : Space.var;   (** sender's ack register *)
  zp : Space.var;  (** receiver's data register *)
  data : Channel.t;
  ack : Channel.t;
}

val make : ?lossy:bool -> ?fault:Kpt_fault.Model.t -> Seqtrans.params -> t

val safety : t -> Bdd.t
(** Eq. 34 for the ABP instance. *)

val liveness_holds : t -> k:int -> bool
(** Eq. 35 instance under fair leads-to (holds without loss; fails with
    loss, as for the standard protocol). *)
