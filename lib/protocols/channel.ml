open Kpt_predicate
open Kpt_unity

type codec = {
  card : int;
  bot : int;
  weights : int list;
  enc : int list -> int;
  dec : int -> int list;
}

let nat_codec ~max =
  {
    card = max + 2;
    bot = max + 1;
    weights = [ 1 ];
    enc = (function [ k ] -> k | _ -> invalid_arg "nat_codec.enc");
    dec = (fun v -> [ v ]);
  }

let pair_codec ~n ~a =
  {
    card = (n * a) + 1;
    bot = n * a;
    weights = [ a; 1 ];
    enc =
      (function
      | [ k; alpha ] ->
          if k < 0 || k >= n || alpha < 0 || alpha >= a then
            invalid_arg "pair_codec.enc: out of range"
          else (k * a) + alpha
      | _ -> invalid_arg "pair_codec.enc");
    dec = (fun v -> [ v / a; v mod a ]);
  }

type t = { codec : codec; slot : Space.var; avail : Space.var }

let declare sp ~name codec =
  let slot = Space.nat_var sp (name ^ "_slot") ~max:(codec.card - 1) in
  let avail = Space.nat_var sp (name ^ "_avail") ~max:(codec.card - 1) in
  { codec; slot; avail }

let register sp ~name codec = Space.nat_var sp name ~max:(codec.card - 1)

(* c · e by repeated addition (no multiplication in the expression
   language; channel component weights are small). *)
let mul_const c e =
  if c = 0 then Expr.nat 0
  else
    let rec go k acc = if k = 1 then acc else go (k - 1) Expr.(acc +! e) in
    go c e

let transmit ch components =
  let ws = ch.codec.weights in
  if List.length ws <> List.length components then
    invalid_arg "Channel.transmit: arity mismatch";
  let terms = List.map2 mul_const ws components in
  let expr = match terms with [] -> Expr.nat 0 | t :: ts -> List.fold_left Expr.( +! ) t ts in
  (ch.slot, expr)

let receive ch reg = (reg, Expr.var ch.avail)
let deliver_stmt ch ~name = Stmt.make ~name [ (ch.avail, Expr.var ch.slot) ]
let drop_stmt ch ~name = Stmt.make ~name [ (ch.avail, Expr.nat ch.codec.bot) ]

let init_expr ch =
  Expr.((var ch.slot === nat ch.codec.bot) &&& (var ch.avail === nat ch.codec.bot))

let env sp ?up ?corrupt_to ch ~name model =
  Kpt_fault.Inject.env sp ~slot:ch.slot ~avail:ch.avail ~bot:ch.codec.bot ?up ?corrupt_to
    ~name model

(* The shared [?lossy] / [?fault] resolution of the protocol builders:
   an explicit fault model wins; otherwise [~lossy] selects between the
   two historical channels (lossy = the paper's §6.3 channel,
   non-lossy = reliable-but-duplicating). *)
let resolve_fault ~lossy fault =
  match fault with
  | Some f -> f
  | None -> if lossy then Kpt_fault.Model.lossy else Kpt_fault.Model.duplicating

(* Program-name suffix: the two historical models keep their historical
   spellings so every pre-fault call site sees identical program names. *)
let fault_suffix model =
  if Kpt_fault.Model.equal model Kpt_fault.Model.lossy then "_lossy"
  else if Kpt_fault.Model.equal model Kpt_fault.Model.duplicating then ""
  else "_" ^ Kpt_fault.Model.to_string model
