(** The sequence transmission problem (§6, after [HZ87]):

    transmit the sequence [x] over a faulty channel so that the delivered
    sequence [w] is always a prefix of [x] (safety, eq. 34) and keeps
    growing (liveness, eq. 35).

    Two protocols are built here, both bounded by a horizon [n] and an
    alphabet size [a] (the paper's protocols are infinite-state; the
    bounded instances exercise every transition of the first [n]
    elements, and all checked properties are parametric in [k < n]):

    - {!standard}: Figure 4 — explicit sequence numbers, an ack channel
      conveying the receiver's index [j], and a data channel carrying
      pairs [(i, y)], over capacity-1 channels with optional loss /
      detectable corruption (duplication is always possible because a
      delivered message stays available).  [zp] is the paper's [z'],
      [z] its [z]; both are written only by their owner's statements
      via embedded [receive], which is what makes eqs. 55–56 stable.

    - {!abstract_kbp}: Figure 3 under the paper's own §6.4 "weaker
      interpretation": the knowledge predicates [K_R(x_k = α)],
      [K_S K_R x_k] and [K_S(j ≥ k)] are {e explicit Boolean variables},
      set (never reset) by two environment "oracle" statements that model
      a data- and an ack-message getting through; all properties the
      paper lists (Kbp-1..4 and the S5 soundness facts) are then provable
      from the program text, which is what makes the mechanised replay of
      the §6.2 correctness proof possible (see {!Seqtrans_proofs}). *)

open Kpt_predicate
open Kpt_unity

type params = { n : int; a : int }
(** Horizon (elements transmitted) and alphabet size.  [n ≥ 2], [a ≥ 2]
    required ([a ≥ 2] is the paper's "no a priori information" proviso). *)

(** {1 The standard protocol (Figure 4)} *)

type standard = {
  sprog : Program.t;
  sspace : Space.t;
  sparams : params;
  xs : Space.var array;  (** the sequence to send (never assigned) *)
  ws : Space.var array;  (** the delivered sequence; [ws.(k)] valid for [k < j] *)
  y : Space.var;  (** sender's cache of [x_i] *)
  i : Space.var;  (** sender's index, [0..n-1] *)
  j : Space.var;  (** receiver's index = |w|, [0..n] *)
  z : Space.var;  (** sender's receive register (acks), [0..n] ∪ ⊥ *)
  zp : Space.var;  (** receiver's receive register (data), [(k,α)] ∪ ⊥ *)
  data : Channel.t;  (** sender → receiver *)
  ack : Channel.t;  (** receiver → sender *)
}

val standard : ?lossy:bool -> ?fault:Kpt_fault.Model.t -> params -> standard
(** Build the bounded Figure-4 program.  [lossy] (default [true])
    includes the drop statements; without them the channel still
    duplicates but St-3/St-4 hold outright and liveness is unconditional.
    [?fault] overrides [?lossy] with an explicit {!Kpt_fault.Model.t}
    (a single shared crash flag when the model crashes). *)

val spec_safety : standard -> Bdd.t
(** Eq. 34 at the bounded horizon: [⋀ k < n : j > k ⇒ w_k = x_k]. *)

val spec_liveness_holds : standard -> k:int -> bool
(** Eq. 35 instance: does [j = k ↦ j > k] hold semantically (fair
    leads-to)?  True for every [k < n] on the duplicating-only channel;
    {e false} on the lossy channel — which is exactly why the paper must
    assume St-3/St-4. *)

val inv54 : standard -> k:int -> Bdd.t
(** Eq. 54: [z ≥ k ⇒ j ≥ k] (with [z ≠ ⊥] implicit in [z ≥ k]). *)

val inv61 : standard -> k:int -> alpha:int -> Bdd.t
(** Eq. 61: the proposed [K_R(x_k = α)] value implies [x_k = α]. *)

val inv62 : standard -> k:int -> Bdd.t
(** Eq. 62 (content): the proposed [K_S K_R x_k] value implies [j > k]
    (hence the receiver has delivered, and knows, [x_k]). *)

val cand_kr : standard -> k:int -> alpha:int -> Bdd.t
(** Eq. 50: [(j = k ∧ z' = (k,α)) ∨ (j > k ∧ w_k = α)]. *)

val cand_kskr : standard -> k:int -> Bdd.t
(** Eq. 51: [(i = k ∧ z = k+1) ∨ i > k]. *)

val cand_ksj : standard -> k:int -> Bdd.t
(** Eq. 52's witness for [K_S (j ≥ k)]: [z ≥ k] (with [z ≠ ⊥]). *)

val real_kr : standard -> k:int -> alpha:int -> Bdd.t
(** The genuine [K_R(x_k = α)] by the knowledge transformer (eq. 13). *)

val real_kskr : standard -> k:int -> Bdd.t
(** The genuine [K_S K_R x_k ≝ K_S (∃α :: K_R(x_k = α))]. *)

val stable55_holds : standard -> k:int -> bool
(** Eq. 55: stability of the proposed [K_S K_R x_k] value. *)

val stable56_holds : standard -> k:int -> alpha:int -> bool
(** Eq. 56: stability of the proposed [K_R(x_k = α)] value. *)

(** {1 The knowledge-based protocol (Figure 3), weaker interpretation} *)

type abstract = {
  aprog : Program.t;
  aspace : Space.t;
  aparams : params;
  axs : Space.var array;
  aws : Space.var array;
  ay : Space.var;
  ai : Space.var;
  aj : Space.var;
  kr : Space.var array array;  (** [kr.(k).(α)] ⇔ "K_R(x_k = α)" *)
  kskr : Space.var array;  (** [kskr.(k)] ⇔ "K_S K_R x_k" *)
  ksj : Space.var array;  (** [ksj.(k)] ⇔ "K_S (j ≥ k)", [k ≤ n] *)
}

val abstract_kbp : params -> abstract
(** Build the Figure-3 program in the weaker interpretation. *)

val a_spec_safety : abstract -> Bdd.t
(** Eq. 34 for the abstract protocol. *)

val a_spec_liveness_holds : abstract -> k:int -> bool
(** Eq. 35 instance, semantic fair leads-to (holds: the oracles fire
    under UNITY fairness, which is the canonical channel satisfying
    Kbp-1/Kbp-2). *)

(** {2 Predicate shorthands used by the proof replay} *)

val a_kr : abstract -> k:int -> alpha:int -> Bdd.t

val a_krx : abstract -> k:int -> Bdd.t
(** [K_R x_k ≝ (∃α :: K_R(x_k = α))]. *)

val a_kskr : abstract -> k:int -> Bdd.t
val a_ksj : abstract -> k:int -> Bdd.t
val a_j_eq : abstract -> int -> Bdd.t
val a_j_gt : abstract -> int -> Bdd.t
val a_i_eq : abstract -> int -> Bdd.t
val a_i_gt : abstract -> int -> Bdd.t
val a_i_ge : abstract -> int -> Bdd.t
val a_y_eq : abstract -> int -> Bdd.t
