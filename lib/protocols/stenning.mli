(** Stenning's data transfer protocol [Ste82] (window size 1) — the other
    classical refinement the paper's §6 cites.

    Unlike the Figure-4 standard protocol (whose ack carries the
    receiver's {e next needed} index [j]), Stenning's receiver
    acknowledges the {e highest index delivered so far} ([j - 1]), and
    the sender advances when that equals its current index [i].
    Functionally equivalent over our channels; structurally a distinct
    member of the family, useful as a second instantiation target. *)

open Kpt_predicate
open Kpt_unity

type t = {
  prog : Program.t;
  space : Space.t;
  params : Seqtrans.params;
  xs : Space.var array;
  ws : Space.var array;
  y : Space.var;
  i : Space.var;
  j : Space.var;
  z : Space.var;   (** sender's ack register: last index the receiver delivered *)
  zp : Space.var;  (** receiver's data register *)
  data : Channel.t;
  ack : Channel.t;
}

val make : ?lossy:bool -> ?fault:Kpt_fault.Model.t -> Seqtrans.params -> t

val safety : t -> Bdd.t
(** Eq. 34 for the Stenning instance. *)

val liveness_holds : t -> k:int -> bool
(** Eq. 35 instance under fair leads-to. *)
