(** Parametric ring protocols for the scaling harness.

    Two families, both generated directly against the library API (no
    surface syntax) so the bench sweep can instantiate any size:

    - {!token_ring}: the classic n-station mutual-exclusion ring.  One
      token circulates; a station may only work while it holds the token
      and must release it onward.  The reachable state space is exactly
      [2n] states out of [n·2ⁿ], so the family exercises the [sst]
      frontier loop at growing variable counts while every predicate
      stays small — the baseline curve of `scaling_standard_protocol`.

    - {!mirror}: an adversarially-declared stress instance for dynamic
      variable reordering.  [n] pairs of [width]-bit counters advance in
      lock-step pair-wise, so the reachable set is the agreement
      predicate [⋀ i :: lᵢ = rᵢ] — [2{^width·n}] states whose BDD is
      {e exponential} in the declaration order (all lefts before all
      rights) but linear once the pairs are interleaved.  With
      reordering off the [sst] fixpoint exhausts any reasonable node
      budget already at moderate [n]; with sifting on it converges to
      the interleaved order and completes easily — the contrast pinned
      by the acceptance tests. *)

open Kpt_predicate
open Kpt_unity

(** {1 Token ring} *)

type ring = {
  rprog : Program.t;
  rspace : Space.t;
  token : Space.var;  (** index of the station holding the token *)
  busy : Space.var array;  (** [busy.(k)]: station [k] is in its critical section *)
}

val token_ring : n:int -> ring
(** Build the [n]-station ring ([n ≥ 2]).  Initially station 0 holds the
    token and nobody is busy. *)

val monitored : n:int -> ring
(** The [n]-station ring plus a write-only audit monitor: each station
    bumps a shared saturating [log : nat(2n-1)] counter while busy, and
    nothing reads [log] back.  Any property over [token]/[busy] therefore
    has a cone of influence excluding the monitors and the log bits —
    the slicing vehicle for the bench and tests (the plain {!token_ring}
    is fully connected, so slicing it is the identity). *)

val mutex_ok : ring -> Bdd.t
(** Safety: no two stations busy simultaneously.  An invariant of the
    ring (checked by the test suite and timed by the bench sweep). *)

val holder_busy : ring -> Bdd.t
(** The token holder is busy — holds on exactly [n] of the [2n]
    reachable states. *)

(** {1 Mirrored counters} *)

type mirror = {
  mprog : Program.t;
  mspace : Space.t;
  left : Space.var array;
  right : Space.var array;
}

val mirror : n:int -> width:int -> mirror
(** Build the [n]-pair mirrored-counter program over [width]-bit
    counters ([n ≥ 2], [width ≥ 1]), with the adversarial declaration
    order described above. *)

val agreement : mirror -> Bdd.t
(** [⋀ i :: lᵢ = rᵢ] — the reachable set of {!mirror}, and the
    order-sensitive predicate the reordering acceptance test pivots
    on. *)
