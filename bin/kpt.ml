(* kpt — command-line driver for the knowledge-predicate-transformer
   library.

     kpt experiments            reproduce every paper artifact (E1-E9)
     kpt solve figure1|figure2  run the KBP solvers on the paper's examples
     kpt check <protocol>       model-check a protocol against the §6 spec
     kpt check FILE … [-j N]    batch-check .unity files in parallel (lint+solve+stats)
     kpt matrix                 re-verify every protocol under every fault model
     kpt simulate <protocol>    run a concrete fair execution
     kpt proof kbp|standard     replay the §6 proofs in the LCF kernel
     kpt parse FILE             parse and elaborate a .unity source file
     kpt lint FILE …            run the static-analysis passes on source files
                                (--semantic adds the budgeted KPT1xx tier)
     kpt slice FILE [--wrt P]   cone-of-influence slice of a file's protocol
     kpt verify FILE …          check user-supplied properties of a file
     kpt stats FILE             profile the engine on a file (--json for machines) *)

open Cmdliner
open Kpt_predicate
open Kpt_unity
open Kpt_core
open Kpt_protocols

let fmt = Format.std_formatter

let () =
  (* diagnostic logging: set KPT_DEBUG=1 to see solver/checker tracing *)
  if Sys.getenv_opt "KPT_DEBUG" <> None then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end

(* ---- shared arguments --------------------------------------------------- *)

let n_arg =
  Arg.(value & opt int 2 & info [ "n"; "horizon" ] ~doc:"Sequence horizon (≥ 2).")

let a_arg =
  Arg.(value & opt int 2 & info [ "a"; "alphabet" ] ~doc:"Alphabet size (≥ 2).")

let lossy_arg =
  Arg.(value & flag & info [ "lossy" ] ~doc:"Include message loss / corruption.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Scheduler seed.")

let steps_arg =
  Arg.(value & opt int 200 & info [ "steps" ] ~doc:"Number of scheduler steps.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Stream fixpoint iterations (sst frontiers, Ĝ-iteration steps, gfp sweeps) to \
           standard error as they happen.")

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for multi-file commands (0 = auto: $(b,KPT_JOBS) or the \
           core count).  Output is byte-identical at every setting.")

let jobs_opt j = if j <= 0 then None else Some j

(* ---- resource budgets and fault models ----------------------------------- *)

(* Exit-code contract (documented in the README):
     0   success          1   a property failed / findings
     2   usage error      3   resource exhaustion (budget, stack, memory)
     130 interrupted (Ctrl-C)                                              *)
let exit_resource = 3
let exit_interrupted = 130

let pos_float_conv =
  let parse s =
    match float_of_string_opt s with
    | Some f when f > 0. -> Ok f
    | _ -> Error (`Msg (Printf.sprintf "expected a positive number, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_float)

let timeout_arg =
  Arg.(
    value
    & opt (some pos_float_conv) None
    & info [ "timeout" ] ~docv:"SEC"
        ~doc:
          "Wall-clock budget in seconds.  On expiry the command reports what it has \
           (a partial result where the solver supports one) and exits with code 3.")

let fuel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuel" ] ~docv:"N"
        ~doc:
          "Fixpoint-iteration budget: every sst frontier round, Ĝ-iteration step and \
           gfp sweep consumes one unit.  Deterministic, unlike $(b,--timeout).  \
           Exhaustion exits with code 3.")

let max_nodes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-nodes" ] ~docv:"N"
        ~doc:"Ceiling on allocated BDD nodes per manager.  Exhaustion exits with code 3.")

let limits_term =
  let make timeout fuel max_nodes =
    Budget.limits
      ?timeout_ns:(Option.map Budget.timeout_of_seconds timeout)
      ?fuel ?max_nodes ()
  in
  Term.(const make $ timeout_arg $ fuel_arg $ max_nodes_arg)

(* ---- variable-reordering policy ------------------------------------------- *)

let reorder_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("auto", Engine.Reorder_auto);
             ("off", Engine.Reorder_off);
             ("manual", Engine.Reorder_manual);
           ])
        Engine.Reorder_auto
    & info [ "reorder" ] ~docv:"MODE"
        ~doc:
          "BDD variable-reordering policy: $(b,auto) (sifting fires on node-growth \
           thresholds; the default), $(b,off) (the declaration order is kept for the \
           whole run), or $(b,manual) (no automatic triggers; the engine reorders \
           only at explicit safe points, e.g. after elaboration).")

(* Evaluated before the command body runs: every engine created by the
   command — including the per-domain engines of parallel batches —
   inherits the chosen policy. *)
let reorder_term =
  Term.(const (fun mode -> Engine.set_default_reorder_mode mode) $ reorder_arg)

(* Run a command body under the armed budget; [Exhausted] degrades to
   the documented exit code instead of an exception trace. *)
let budgeted limits f =
  match Engine.with_budget limits f with
  | code -> code
  | exception Budget.Exhausted reason ->
      Format.printf "budget exhausted: %s@." (Budget.reason_to_string reason);
      exit_resource

let fault_conv =
  let parse s =
    match Kpt_fault.Model.of_string s with
    | Ok m -> Ok m
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Kpt_fault.Model.pp)

let fault_arg =
  Arg.(
    value
    & opt (some fault_conv) None
    & info [ "fault" ] ~docv:"MODEL"
        ~doc:
          "Channel fault model: a named model (perfect, duplicating, lossy, \
           value-corrupt, crash) or a '+'-joined set of primitives (dup, loss, bot, \
           value, crash).  Overrides $(b,--lossy).")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Driver-backed commands (the batch form of check, lint, stats,
   solve-file, slice) share their bodies with the serve daemon via
   [Kpt_analysis.Driver]: the body renders to strings, we put them on
   the real streams.  [--trace] events are streamed live to stderr via
   an explicit sink instead of being buffered with the rest. *)
let emit_outcome (o : Kpt_analysis.Driver.outcome) =
  print_string o.Kpt_analysis.Driver.out;
  flush stdout;
  prerr_string o.Kpt_analysis.Driver.err;
  flush stderr;
  o.Kpt_analysis.Driver.code

let live_trace_sink trace =
  if trace then Some (Kpt_obs.trace_sink Format.err_formatter) else None

(* [--trace] installs the observability sink for the duration of [f];
   with the flag off the sink stays [None] and the instrumented layers
   allocate nothing. *)
let with_trace trace f =
  if not trace then f ()
  else begin
    Kpt_obs.set_sink (Some (Kpt_obs.trace_sink Format.err_formatter));
    Fun.protect ~finally:(fun () -> Kpt_obs.set_sink None) f
  end

(* ---- experiments --------------------------------------------------------- *)

let experiments_cmd =
  let run () =
    let verdicts = Kpt_experiments.Experiments.run_all fmt in
    Format.printf "@.Summary:@.";
    List.iter
      (fun (name, ok) ->
        Format.printf "  %-18s %s@." name (if ok then "REPRODUCED" else "MISMATCH"))
      verdicts;
    if List.for_all snd verdicts then 0 else 1
  in
  Cmd.v (Cmd.info "experiments" ~doc:"Reproduce every paper artifact (E1-E9).")
    Term.(const run $ const ())

(* ---- solve --------------------------------------------------------------- *)

let build_figure1 () =
  let sp = Space.create () in
  let shared = Space.bool_var sp "shared" in
  let x = Space.bool_var sp "x" in
  let p0 = Process.make "P0" [ shared ] in
  let p1 = Process.make "P1" [ shared; x ] in
  Kbp.make sp ~name:"figure1"
    ~init:Expr.(not_ (var shared) &&& not_ (var x))
    ~processes:[ p0; p1 ]
    [
      Kbp.kstmt ~name:"s0"
        ~guard:(Kform.k "P0" (Kform.knot (Kform.base (Expr.var x))))
        [ (shared, Expr.tru) ];
      Kbp.kstmt ~name:"s1" ~guard:(Kform.base (Expr.var shared))
        [ (x, Expr.tru); (shared, Expr.fls) ];
    ]

let build_figure2 ~strong =
  let sp = Space.create () in
  let x = Space.bool_var sp "x" in
  let y = Space.bool_var sp "y" in
  let z = Space.bool_var sp "z" in
  let p0 = Process.make "P0" [ y ] in
  let p1 = Process.make "P1" [ z ] in
  let init = if strong then Expr.(not_ (var y) &&& var x) else Expr.(not_ (var y)) in
  Kbp.make sp ~name:"figure2" ~init ~processes:[ p0; p1 ]
    [
      Kbp.kstmt ~name:"s0" ~guard:(Kform.k "P0" (Kform.base (Expr.var x))) [ (y, Expr.tru) ];
      Kbp.kstmt ~name:"s1"
        ~guard:(Kform.k "P1" (Kform.knot (Kform.base (Expr.var y))))
        [ (z, Expr.tru) ];
    ]

let solve_cmd =
  let model =
    Arg.(
      required
      & pos 0 (some (enum [ ("figure1", `Fig1); ("figure2", `Fig2); ("figure2-strong", `Fig2s) ])) None
      & info [] ~docv:"MODEL" ~doc:"figure1, figure2 or figure2-strong.")
  in
  let run () model trace limits =
    with_trace trace @@ fun () ->
    let kbp =
      match model with
      | `Fig1 -> build_figure1 ()
      | `Fig2 -> build_figure2 ~strong:false
      | `Fig2s -> build_figure2 ~strong:true
    in
    Format.printf "%a@.@." Kbp.pp kbp;
    let sp = Kbp.space kbp in
    let code = ref 0 in
    (match Engine.with_budget limits (fun () -> Kbp.solutions kbp) with
    | [] -> Format.printf "No solution: Ĝ(X) = X has no fixpoint (the KBP is not well-posed).@."
    | sols ->
        Format.printf "%d solution(s):@." (List.length sols);
        List.iter (fun s -> Format.printf "  SI = %a@." (Space.pp_pred sp) s) sols
    | exception Budget.Exhausted reason ->
        Format.printf "Solution enumeration: budget exhausted (%s).@."
          (Budget.reason_to_string reason);
        code := exit_resource);
    (match Kbp.solve ~budget:limits kbp with
    | Kbp.Converged { si; steps } ->
        Format.printf "Chaotic iteration converged in %d step(s) to %a@." steps
          (Space.pp_pred sp) si
    | Kbp.Diverged { orbit; _ } ->
        Format.printf "Chaotic iteration diverges: cycle with period %d:@."
          (List.length orbit);
        List.iter (fun s -> Format.printf "  → %a@." (Space.pp_pred sp) s) orbit
    | Kbp.Budget_exhausted { reason; steps; candidate } ->
        Format.printf
          "Chaotic iteration: budget exhausted (%s) after %d step(s); candidate X = %a@."
          (Budget.reason_to_string reason) steps (Space.pp_pred sp) candidate;
        code := exit_resource);
    !code
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve a knowledge-based protocol (Figures 1-2).")
    Term.(const run $ reorder_term $ model $ trace_arg $ limits_term)

(* ---- check ---------------------------------------------------------------- *)

type proto = Standard | Kbp_proto | Abp | Stenning | Auy | Window

let protos =
  [
    ("standard", Standard); ("kbp", Kbp_proto); ("abp", Abp);
    ("stenning", Stenning); ("auy", Auy); ("window", Window);
  ]

let check_cmd =
  let run_proto proto n a lossy fault limits =
    budgeted limits @@ fun () ->
    let params = { Seqtrans.n; a } in
    (* [--fault] overrides [--lossy]; the channel-free protocols reject it. *)
    let model = Channel.resolve_fault ~lossy fault in
    let no_fault what =
      if fault <> None then begin
        Format.eprintf "error: --fault does not apply to the %s protocol (no channel)@."
          what;
        raise Stdlib.Exit
      end
    in
    match
      let name, prog, safety, live =
        match proto with
        | Standard ->
            let st = Seqtrans.standard ~lossy ?fault params in
            ( "standard",
              st.Seqtrans.sprog,
              Seqtrans.spec_safety st,
              fun k -> Seqtrans.spec_liveness_holds st ~k )
        | Kbp_proto ->
            no_fault "abstract knowledge-based";
            let ab = Seqtrans.abstract_kbp params in
            ( "knowledge-based",
              ab.Seqtrans.aprog,
              Seqtrans.a_spec_safety ab,
              fun k -> Seqtrans.a_spec_liveness_holds ab ~k )
        | Abp ->
            let t = Abp.make ~lossy ?fault params in
            ("alternating-bit", t.Abp.prog, Abp.safety t, fun k -> Abp.liveness_holds t ~k)
        | Stenning ->
            let t = Stenning.make ~lossy ?fault params in
            ("stenning", t.Stenning.prog, Stenning.safety t, fun k -> Stenning.liveness_holds t ~k)
        | Auy ->
            no_fault "auy";
            let t = Auy.make params in
            ("auy", t.Auy.prog, Auy.safety t, fun k -> Auy.liveness_holds t ~k)
        | Window ->
            let t = Window.make ~lossy ?fault ~window:2 params in
            ( "sliding-window(2)",
              t.Window.prog,
              Window.safety t,
              fun k -> Window.liveness_holds t ~k )
      in
      let blurb =
        if Kpt_fault.Model.equal model Kpt_fault.Model.lossy then ", lossy"
        else if Kpt_fault.Model.equal model Kpt_fault.Model.duplicating then ""
        else ", fault=" ^ Kpt_fault.Model.to_string model
      in
      Format.printf "checking %s (n=%d, |A|=%d%s)@." name n a blurb;
      let sp = Program.space prog in
      Format.printf "  reachable states : %d@."
        (Space.count_states_of sp (Program.si prog));
      Format.printf "  safety (34)      : %b@." (Program.invariant prog safety);
      let ok = ref true in
      for k = 0 to n - 1 do
        let l = live k in
        if not l then ok := false;
        Format.printf "  liveness (35)@%d  : %b@." k l
      done;
      if Program.invariant prog safety && !ok then 0 else 1
    with
    | code -> code
    | exception Stdlib.Exit -> 2
  in
  let targets_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"TARGET"
          ~doc:
            "Either one built-in protocol (standard, kbp, abp, stenning, auy, window) \
             or any number of .unity files.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one machine-readable JSON report for the whole batch.")
  in
  let warn_error_arg =
    Arg.(
      value & flag
      & info [ "warn-error" ] ~doc:"Treat warnings as errors for the exit code.")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ]
          ~doc:"Print nothing; communicate through the exit code only.")
  in
  let slice_arg =
    Arg.(
      value & flag
      & info [ "slice" ]
          ~doc:
            "Reduce each file's protocol to its cone of influence before solving \
             (conservative for knowledge guards; the verdict is preserved).")
  in
  let run_batch paths reorder jobs json slice warn_error quiet limits =
    match List.map (fun p -> (p, read_file p)) paths with
    | sources ->
        emit_outcome
          (Kpt_analysis.Driver.check
             {
               Kpt_analysis.Driver.default_options with
               jobs = jobs_opt jobs;
               json;
               warn_error;
               quiet;
               slice;
               limits;
               reorder;
             }
             sources)
    | exception Sys_error msg ->
        Format.eprintf "error: %s@." msg;
        1
  in
  let run reorder targets n a lossy fault jobs json slice warn_error quiet limits =
    match targets with
    | [ name ] when List.mem_assoc name protos ->
        (* the built-in-protocol path still runs in-process: give it the
           requested reorder policy the way [reorder_term] used to *)
        Engine.set_default_reorder_mode reorder;
        run_proto (List.assoc name protos) n a lossy fault limits
    | paths ->
        if fault <> None then begin
          Format.eprintf "error: --fault applies to built-in protocols only@.";
          2
        end
        else run_batch paths reorder jobs json slice warn_error quiet limits
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Model-check a built-in protocol against the §6 specification (optionally \
          under a $(b,--fault) model and a resource budget), or batch-check .unity \
          files (lint + solve + stats, in parallel with $(b,-j); $(b,--timeout) is a \
          per-file deadline).")
    Term.(
      const run $ reorder_arg $ targets_arg $ n_arg $ a_arg $ lossy_arg $ fault_arg
      $ jobs_arg $ json_arg $ slice_arg $ warn_error_arg $ quiet_arg $ limits_term)

(* ---- simulate -------------------------------------------------------------- *)

let simulate_cmd =
  let run n a lossy seed steps =
    let params = { Seqtrans.n; a } in
    let st = Seqtrans.standard ~lossy params in
    let prog = st.Seqtrans.sprog in
    let sp = st.Seqtrans.sspace in
    let rng = Stdlib.Random.State.make [| seed |] in
    let init = Kpt_runs.Exec.random_init prog rng in
    let trace = Kpt_runs.Exec.run prog ~scheduler:(Kpt_runs.Exec.Random_fair seed) ~steps ~init in
    Format.printf "simulated %d steps of the standard protocol (n=%d, |A|=%d%s, seed %d)@."
      steps n a (if lossy then ", lossy" else "") seed;
    (match
       Kpt_runs.Monitor.first_violation sp (Seqtrans.spec_safety st) trace
     with
    | None -> Format.printf "  safety (34) held along the whole trace@."
    | Some i -> Format.printf "  SAFETY VIOLATED at step %d!@." i);
    let done_p = Expr.compile_bool sp Expr.(var st.Seqtrans.j === nat n) in
    (match Kpt_runs.Monitor.eventually sp done_p trace with
    | Some i -> Format.printf "  transmission complete after %d steps@." i
    | None ->
        let final = Kpt_runs.Exec.final trace in
        Format.printf "  incomplete: delivered %d/%d elements@."
          final.(Space.idx st.Seqtrans.j) n);
    Format.printf "  statement counts: %s@."
      (String.concat ", "
         (List.map
            (fun (s, c) -> Printf.sprintf "%s×%d" s c)
            (Kpt_runs.Exec.statement_counts trace)));
    0
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a concrete fair execution of the standard protocol.")
    Term.(const run $ n_arg $ a_arg $ lossy_arg $ seed_arg $ steps_arg)

(* ---- proof ------------------------------------------------------------------ *)

let proof_cmd =
  let which =
    Arg.(
      required
      & pos 0 (some (enum [ ("kbp", `Kbp); ("standard", `Std) ])) None
      & info [] ~docv:"WHICH" ~doc:"kbp (Figure 3) or standard (Figure 4).")
  in
  let tree =
    Arg.(value & flag & info [ "tree" ] ~doc:"Print the full derivation tree of each liveness theorem.")
  in
  let run which n a lossy tree =
    let params = { Seqtrans.n; a } in
    let thms =
      match which with
      | `Kbp -> Seqtrans_proofs.replay_abstract (Seqtrans.abstract_kbp params)
      | `Std ->
          Seqtrans_proofs.replay_standard ~assume_channel:lossy
            (Seqtrans.standard ~lossy params)
    in
    Format.printf "replayed %d theorems:@." (List.length thms);
    List.iter
      (fun (name, t) ->
        let assumps = Kpt_logic.Proof.assumptions t in
        Format.printf "  %-22s %s  (%d rule applications)@." name
          (if assumps = [] then "⊢ (from the program text)"
           else "⊢ assuming " ^ String.concat ", " assumps)
          (Kpt_logic.Proof.derivation_size t);
        if tree && String.length name >= 8 && String.sub name 0 8 = "liveness" then begin
          Format.printf "@.derivation of %s:@." name;
          Kpt_logic.Proof.pp_derivation Format.std_formatter t;
          Format.printf "@."
        end)
      thms;
    0
  in
  Cmd.v
    (Cmd.info "proof" ~doc:"Replay the §6 correctness proofs in the LCF kernel.")
    Term.(const run $ which $ n_arg $ a_arg $ lossy_arg $ tree)

(* ---- parse / verify: the concrete syntax front end -------------------------- *)

let load path =
  let src = read_file path in
  let ast = Kpt_syntax.Parser.program_of_string src in
  Kpt_syntax.Elaborate.program ast

(* Load a .unity file and run [f] on the result; lexical, syntax and
   elaboration errors are rendered once, uniformly, as
   [file:line:col: error[KPT00x]: …].  Every file-consuming command
   funnels through here. *)
let with_loaded path f =
  match load path with
  | loaded -> f loaded
  | exception
      ((Kpt_syntax.Token.Lex_error _ | Kpt_syntax.Parser.Parse_error _
       | Kpt_syntax.Elaborate.Elab_error _) as exn) ->
      (match Kpt_analysis.Diagnostic.of_syntax_exn ~file:path exn with
      | Some d -> Format.eprintf "%a@." Kpt_analysis.Diagnostic.pp d
      | None -> Format.eprintf "error: %s@." (Printexc.to_string exn));
      1
  | exception Failure msg ->
      Format.eprintf "error: %s@." msg;
      1

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"A .unity source file.")

let parse_cmd =
  let run path =
    with_loaded path @@ fun (sp, kbp) ->
    Format.printf "%a@.@." Kbp.pp kbp;
    Format.printf "state space : %d states over %d variables@."
      (Space.state_count sp)
      (List.length (Space.vars sp));
    if Kbp.is_standard kbp then begin
      let prog = Kbp.to_standard_program kbp in
      Format.printf "standard program; reachable states: %d@."
        (Space.count_states_of sp (Program.si prog))
    end
    else Format.printf "knowledge-based protocol (use 'kpt solve %s')@." path;
    0
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse and elaborate a .unity source file.")
    Term.(const run $ file_arg)

(* ---- lint -------------------------------------------------------------------- *)

let lint_cmd =
  let warn_error =
    Arg.(
      value & flag
      & info [ "warn-error" ] ~doc:"Treat warnings as errors for the exit code.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ]
          ~doc:
            "Print nothing; communicate through the exit code only.  The exit-code \
             policy is unchanged: 1 iff any error (or any warning with \
             $(b,--warn-error)).")
  in
  let files_arg =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"A .unity source file.")
  in
  let semantic =
    Arg.(
      value & flag
      & info [ "semantic" ]
          ~doc:
            "Add the semantic tier (KPT1xx): elaborate each file and run the \
             reachability-aware passes — unreachable statements, dead guards, \
             unsatisfiable init, deadlock-reachable states, locally implementable \
             knowledge guards — under a small deterministic budget.  Override the \
             default budget (fuel 10000, 1e6 nodes) with $(b,--fuel) / \
             $(b,--max-nodes) / $(b,--timeout).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one machine-readable JSON report for the whole batch (the \
             $(b,kpt check --json) shape, minus the per-file stats).")
  in
  let run reorder paths warn_error quiet jobs semantic json limits =
    let sources = List.map (fun path -> (path, read_file path)) paths in
    emit_outcome
      (Kpt_analysis.Driver.lint
         {
           Kpt_analysis.Driver.default_options with
           jobs = jobs_opt jobs;
           semantic;
           json;
           warn_error;
           quiet;
           limits;
           reorder;
         }
         sources)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static-analysis passes (locality, K-polarity, hygiene, \
          interference) on .unity source files; $(b,--semantic) adds the budgeted \
          reachability-aware KPT1xx tier.")
    Term.(
      const run $ reorder_arg $ files_arg $ warn_error $ quiet $ jobs_arg $ semantic
      $ json $ limits_term)

let slice_flag =
  Arg.(
    value & flag
    & info [ "slice" ]
        ~doc:
          "Reduce the protocol to its cone of influence first (conservative for \
           knowledge guards; the verdict is preserved).")

let solve_file_cmd =
  let run reorder path slice trace limits =
    emit_outcome
      (Kpt_analysis.Driver.solve
         ?sink:(live_trace_sink trace)
         {
           Kpt_analysis.Driver.default_options with
           slice;
           trace;
           limits;
           reorder;
         }
         [ (path, read_file path) ])
  in
  Cmd.v
    (Cmd.info "solve-file" ~doc:"Solve the knowledge-based protocol in a .unity file.")
    Term.(const run $ reorder_arg $ file_arg $ slice_flag $ trace_arg $ limits_term)

(* ---- slice: cone-of-influence reduction as a transformation ------------------ *)

let slice_cmd =
  let wrt_arg =
    Arg.(
      value & opt_all string []
      & info [ "wrt" ] ~docv:"EXPR"
          ~doc:
            "Slice with respect to this property (repeatable; the cone is seeded \
             with the union of the properties' variable supports).  Without it the \
             conservative seed is used: everything the protocol can observe, so only \
             write-only sinks are dropped.")
  in
  let run reorder path wrt limits =
    emit_outcome
      (Kpt_analysis.Driver.slice
         {
           Kpt_analysis.Driver.default_options with
           wrt;
           limits;
           reorder;
         }
         [ (path, read_file path) ])
  in
  Cmd.v
    (Cmd.info "slice"
       ~doc:
         "Compute the cone-of-influence slice of a .unity protocol: which statements \
          can influence the property given with $(b,--wrt) (or anything the protocol \
          observes, without it).  Prints the cone, the kept/dropped statement names \
          and — when the slice is not the identity — the sliced protocol.")
    Term.(const run $ reorder_arg $ file_arg $ wrt_arg $ limits_term)

let verify_cmd =
  let invariants =
    Arg.(value & opt_all string [] & info [ "invariant" ] ~docv:"EXPR" ~doc:"Check invariant EXPR.")
  in
  let stables =
    Arg.(value & opt_all string [] & info [ "stable" ] ~docv:"EXPR" ~doc:"Check stable EXPR.")
  in
  let leadstos =
    Arg.(
      value & opt_all string []
      & info [ "leadsto" ] ~docv:"P;Q" ~doc:"Check P leads-to Q (separate with a semicolon).")
  in
  let run () path invs stbls ltos slice trace limits =
    with_trace trace @@ fun () ->
    with_loaded path @@ fun (sp, kbp) ->
    budgeted limits @@ fun () ->
    try
    let prog =
      if Kbp.is_standard kbp then Kbp.to_standard_program kbp
      else begin
        Format.printf "note: knowledge guards resolved at the strongest solution@.";
        match Kbp.strongest_solution kbp with
        | Some si -> Kbp.instantiate kbp ~si
        | None -> failwith "the KBP has no (unique strongest) solution"
      end
    in
    let compile s =
      try
        Kpt_unity.Expr.compile_bool sp
          (Kpt_syntax.Elaborate.expr sp (Kpt_syntax.Parser.expr_of_string s))
      with
      | Kpt_syntax.Elaborate.Elab_error (_, msg)
      | Kpt_syntax.Parser.Parse_error (_, msg)
      | Kpt_syntax.Token.Lex_error (_, msg) ->
          failwith (Printf.sprintf "in %S: %s" s msg)
    in
      (* compile every property up front so [--slice] can seed the cone
         with the union of their supports *)
      let cinvs = List.map (fun s -> (s, compile s)) invs in
      let cstbls = List.map (fun s -> (s, compile s)) stbls in
      let cltos =
        List.map
          (fun s ->
            match String.index_opt s ';' with
            | None -> failwith "leadsto takes a semicolon-separated pair"
            | Some i ->
                let p = String.sub s 0 i in
                let q = String.sub s (i + 1) (String.length s - i - 1) in
                (String.trim p, String.trim q, compile p, compile q))
          ltos
      in
      let prog =
        if not slice then prog
        else begin
          let wrt =
            List.map snd cinvs @ List.map snd cstbls
            @ List.concat_map (fun (_, _, p, q) -> [ p; q ]) cltos
          in
          let sliced, info = Kpt_analysis.Slice.program ~wrt prog in
          if not (Kpt_analysis.Slice.is_identity info) then
            Format.printf "sliced: dropped %d of %d statement(s) outside the cone@."
              (List.length info.Kpt_analysis.Slice.dropped)
              (List.length info.Kpt_analysis.Slice.kept
              + List.length info.Kpt_analysis.Slice.dropped);
          sliced
        end
      in
      let failed = ref 0 in
      let report label ok =
        if not ok then incr failed;
        Format.printf "  %-40s %b@." label ok
      in
      List.iter
        (fun (s, p) ->
          report ("invariant " ^ s) (Program.invariant prog p);
          (* a holding invariant that is not inductive gets the KPT106
             weakness note (with the largest inductive strengthening) *)
          match Kpt_analysis.Semantic.invariant_weakness ~file:path ~label:s prog p with
          | Some (d, _core) -> Format.printf "%a@." Kpt_analysis.Diagnostic.pp d
          | None -> ())
        cinvs;
      List.iter (fun (s, p) -> report ("stable " ^ s) (Kpt_logic.Props.stable prog p)) cstbls;
      List.iter
        (fun (p, q, cp, cq) ->
          report
            (Printf.sprintf "%s ↦ %s" p q)
            (Kpt_logic.Props.leads_to prog cp cq))
        cltos;
      if !failed = 0 then 0 else 1
    with Failure msg ->
      Format.eprintf "error: %s@." msg;
      1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check user-supplied UNITY properties of a .unity file, optionally under a \
          resource budget ($(b,--timeout), $(b,--fuel), $(b,--max-nodes)) and after a \
          property-directed cone-of-influence reduction ($(b,--slice)).")
    Term.(
      const run $ reorder_term $ file_arg $ invariants $ stables $ leadstos $ slice_flag
      $ trace_arg $ limits_term)

(* ---- stats: the engine profile of a single file ------------------------------ *)

let stats_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit a machine-readable JSON profile instead of the human table.  Add \
             $(b,--timings) for wall-clock spans (off by default so the output is \
             deterministic).")
  in
  let timings =
    Arg.(
      value & flag
      & info [ "timings" ] ~doc:"Include the (nondeterministic) timings_ns section in --json.")
  in
  let files_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"One or more .unity source files.")
  in
  let run reorder paths json timings jobs =
    let sources = List.map (fun path -> (path, read_file path)) paths in
    emit_outcome
      (Kpt_analysis.Driver.stats
         {
           Kpt_analysis.Driver.default_options with
           jobs = jobs_opt jobs;
           json;
           timings;
           reorder;
         }
         sources)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Profile the engine on .unity files: op-cache hit rate, node counts, fixpoint \
          iteration depths and exact state-space size.  Several files are profiled in \
          parallel with $(b,-j).")
    Term.(const run $ reorder_arg $ files_arg $ json $ timings $ jobs_arg)

(* ---- matrix: protocols × fault models ---------------------------------------- *)

let matrix_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the deterministic JSON form (what the CI golden pins).")
  in
  let faults_arg =
    Arg.(
      value
      & opt_all fault_conv []
      & info [ "fault" ] ~docv:"MODEL"
          ~doc:
            "Restrict the columns to MODEL (repeatable).  Default: perfect, lossy, \
             value-corrupt, crash.")
  in
  let run () json faults limits =
    let faults =
      match faults with
      | [] -> None
      | ms -> Some (List.map (fun m -> (Kpt_fault.Model.to_string m, m)) ms)
    in
    let m = Kpt_analysis.Resilience.run ~budget:limits ?faults () in
    if json then print_string (Kpt_fault.Matrix.to_json m)
    else Format.printf "%a@." Kpt_fault.Matrix.pp m;
    let verdicts =
      List.map (fun (c : Kpt_fault.Matrix.cell) -> c.Kpt_fault.Matrix.verdict)
        m.Kpt_fault.Matrix.cells
    in
    if List.exists (function Kpt_fault.Matrix.Error _ -> true | _ -> false) verdicts
    then 1
    else if
      List.exists (function Kpt_fault.Matrix.Exhausted _ -> true | _ -> false) verdicts
    then exit_resource
    else 0
  in
  Cmd.v
    (Cmd.info "matrix"
       ~doc:
         "Re-verify every bundled protocol under every fault model and print the \
          resilience matrix (which property survives which fault).  The per-cell \
          budget ($(b,--timeout), $(b,--fuel)) degrades a pathological cell to \
          'exhausted' without losing the rest; any exhausted cell exits with code 3, \
          any errored cell with 1.")
    Term.(const run $ reorder_term $ json_arg $ faults_arg $ limits_term)

(* ---- knowledge queries on .unity files -------------------------------------- *)

let knowledge_cmd =
  let process_arg =
    Arg.(required & opt (some string) None & info [ "process" ] ~docv:"P" ~doc:"Process name.")
  in
  let fact_arg =
    Arg.(required & opt (some string) None & info [ "fact" ] ~docv:"EXPR" ~doc:"The fact φ.")
  in
  let common_arg =
    Arg.(
      value & opt (some string) None
      & info [ "common" ] ~docv:"P1,P2" ~doc:"Also compute common knowledge for this group.")
  in
  let run path pname fact common =
    with_loaded path @@ fun (sp, kbp) ->
    try
        let prog =
          if Kbp.is_standard kbp then Kbp.to_standard_program kbp
          else
            match Kbp.strongest_solution kbp with
            | Some si -> Kbp.instantiate kbp ~si
            | None -> failwith "the KBP has no (unique strongest) solution"
        in
        let p =
          Kpt_unity.Expr.compile_bool sp
            (Kpt_syntax.Elaborate.expr sp (Kpt_syntax.Parser.expr_of_string fact))
        in
        let m = Space.manager sp in
        let si = Program.si prog in
        let k = Knowledge.knows_in prog pname p in
        let show label pred =
          let inside = Bdd.and_ m si pred in
          let count = Space.count_states_of sp inside in
          let total = Space.count_states_of sp si in
          Format.printf "  %-28s %d of %d reachable states@." label count total;
          if count > 0 && count <= 8 then
            Format.printf "    %a@." (Space.pp_pred sp) inside
        in
        Format.printf "program %s, fact: %s@." (Program.name prog) fact;
        show "fact holds at" p;
        show (Printf.sprintf "K_%s(fact) holds at" pname) k;
        (match common with
        | None -> ()
        | Some group ->
            let names = String.split_on_char ',' group |> List.map String.trim in
            let procs = List.map (Program.find_process prog) names in
            let c = Knowledge.common_knowledge sp ~si procs p in
            let e = Knowledge.everyone_knows sp ~si procs p in
            show (Printf.sprintf "E_{%s}(fact) holds at" group) e;
            show (Printf.sprintf "C_{%s}(fact) holds at" group) c);
        0
    with
    | Kpt_syntax.Token.Lex_error (_, msg)
    | Kpt_syntax.Parser.Parse_error (_, msg)
    | Kpt_syntax.Elaborate.Elab_error (_, msg) ->
        Format.eprintf "error: in %S: %s@." fact msg;
        1
    | Failure msg ->
        Format.eprintf "error: %s@." msg;
        1
    | Not_found ->
        Format.eprintf "error: unknown process@.";
        1
  in
  Cmd.v
    (Cmd.info "knowledge" ~doc:"Query the knowledge predicate K_P(φ) on a .unity program.")
    Term.(const run $ file_arg $ process_arg $ fact_arg $ common_arg)

(* ---- serve / client: the warm-engine daemon ---------------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket path.  Default: $(b,KPT_SOCKET), or \
           <tmpdir>/kpt-serve-<uid>.sock.")

let resolve_socket = function
  | Some s -> s
  | None -> Kpt_serve.Server.default_socket ()

let serve_cmd =
  let cache_size_arg =
    Arg.(
      value & opt int 256
      & info [ "cache-size" ] ~docv:"N"
          ~doc:
            "Result-cache capacity in entries (LRU eviction; 0 disables the cache).  \
             Keys are content hashes of (spec bytes, options, engine policy), so an \
             edited file or a changed flag always misses.")
  in
  let serve_jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "serve-jobs" ] ~docv:"N"
          ~doc:
            "Worker domains serving requests concurrently.  Served bytes are \
             identical at any width — each request runs under its own engine \
             scope; only throughput changes.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Bounded request-queue capacity.  When every worker is busy and the \
             queue is full, new connections are shed immediately with a \
             structured $(b,overloaded) error frame (exit 75) instead of piling \
             up in the listen backlog.")
  in
  let request_timeout_arg =
    Arg.(
      value
      & opt (some pos_float_conv) None
      & info [ "request-timeout" ] ~docv:"SEC"
          ~doc:
            "Per-request deadline: caps the verification budget (expiry surfaces \
             as the usual exit 3) and arms a socket-level read/write deadline, so \
             a slow-loris client is disconnected with an exit-4 error frame \
             rather than holding a worker forever.")
  in
  let run socket cache_size jobs queue request_timeout =
    Kpt_serve.Server.run
      (Kpt_serve.Server.config ~jobs ~queue_capacity:queue ?request_timeout
         ~socket_path:(resolve_socket socket) ~cache_size ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the verification daemon: a Unix-domain-socket server that answers \
          check/lint/stats/solve/slice requests from $(b,kpt client) against the \
          warm in-process engine pool, with a content-addressed LRU result cache \
          shared by $(b,--serve-jobs) worker domains behind a bounded queue.  \
          Responses are byte-identical to the direct commands.  SIGINT/SIGTERM \
          drain: accepting stops, queued clients get structured exit-130 frames, \
          in-flight requests finish, the socket is removed, and the daemon exits \
          130; a $(b,shutdown) request exits 0.")
    Term.(
      const run $ socket_arg $ cache_size_arg $ serve_jobs_arg $ queue_arg
      $ request_timeout_arg)

let client_cmd =
  let serve_auto_arg =
    Arg.(
      value & flag
      & info [ "serve-auto" ]
          ~doc:
            "If no daemon is reachable, run the command locally through the same \
             driver instead of failing — same bytes, same exit code, just cold.")
  in
  let files_pos =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"One or more .unity source files.")
  in
  let file_pos =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"A .unity source file.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the machine-readable JSON form.")
  in
  let warn_error_arg =
    Arg.(
      value & flag
      & info [ "warn-error" ] ~doc:"Treat warnings as errors for the exit code.")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ]
          ~doc:"Print nothing; communicate through the exit code only.")
  in
  let slice_arg =
    Arg.(
      value & flag
      & info [ "slice" ]
          ~doc:"Reduce each protocol to its cone of influence before solving.")
  in
  let semantic_arg =
    Arg.(
      value & flag
      & info [ "semantic" ] ~doc:"Add the semantic lint tier (KPT1xx).")
  in
  let timings_arg =
    Arg.(
      value & flag
      & info [ "timings" ]
          ~doc:"Include the (nondeterministic) timings_ns section in --json.")
  in
  let wrt_arg =
    Arg.(
      value & opt_all string []
      & info [ "wrt" ] ~docv:"EXPR"
          ~doc:"Slice with respect to this property (repeatable).")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry up to N additional times, with decorrelated-jitter backoff — \
             but only on failures where the request demonstrably never ran: a \
             failed connect, a connection closed with no reply, or the daemon's \
             structured $(b,overloaded) shed.  Set $(b,KPT_RETRY_SEED) to replay \
             a schedule deterministically.")
  in
  let retry_backoff_arg =
    Arg.(
      value
      & opt pos_float_conv Kpt_serve.Client.default_backoff
      & info [ "retry-backoff" ] ~docv:"SEC"
          ~doc:
            "Base of the retry jitter schedule: each sleep is uniform over \
             [SEC, 3*previous], capped at 5s.")
  in
  (* files are read client-side: the daemon sees spec bytes, never paths,
     so the cache key is content-addressed and the daemon needs no access
     to the client's filesystem *)
  let roundtrip socket serve_auto retries backoff cmd opts paths =
    match List.map (fun p -> (p, read_file p)) paths with
    | files ->
        Kpt_serve.Client.run_cli ~socket:(resolve_socket socket) ~serve_auto
          ~retries ~backoff
          { Kpt_serve.Protocol.id = 1; cmd; files; opts }
    | exception Sys_error msg ->
        Format.eprintf "error: %s@." msg;
        1
  in
  let check_sub =
    let run socket serve_auto retries backoff paths reorder jobs json slice
        warn_error quiet limits =
      roundtrip socket serve_auto retries backoff Kpt_serve.Protocol.Check
        {
          Kpt_analysis.Driver.default_options with
          jobs = jobs_opt jobs;
          json;
          slice;
          warn_error;
          quiet;
          limits;
          reorder;
        }
        paths
    in
    Cmd.v
      (Cmd.info "check" ~doc:"Batch-check .unity files through the daemon.")
      Term.(
        const run $ socket_arg $ serve_auto_arg $ retries_arg $ retry_backoff_arg
        $ files_pos $ reorder_arg $ jobs_arg $ json_arg $ slice_arg
        $ warn_error_arg $ quiet_arg $ limits_term)
  in
  let lint_sub =
    let run socket serve_auto retries backoff paths reorder jobs semantic json
        warn_error quiet limits =
      roundtrip socket serve_auto retries backoff Kpt_serve.Protocol.Lint
        {
          Kpt_analysis.Driver.default_options with
          jobs = jobs_opt jobs;
          semantic;
          json;
          warn_error;
          quiet;
          limits;
          reorder;
        }
        paths
    in
    Cmd.v
      (Cmd.info "lint" ~doc:"Lint .unity files through the daemon.")
      Term.(
        const run $ socket_arg $ serve_auto_arg $ retries_arg $ retry_backoff_arg
        $ files_pos $ reorder_arg $ jobs_arg $ semantic_arg $ json_arg
        $ warn_error_arg $ quiet_arg $ limits_term)
  in
  let stats_sub =
    let run socket serve_auto retries backoff paths reorder jobs json timings =
      roundtrip socket serve_auto retries backoff Kpt_serve.Protocol.Stats
        {
          Kpt_analysis.Driver.default_options with
          jobs = jobs_opt jobs;
          json;
          timings;
          reorder;
        }
        paths
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Profile .unity files through the daemon.")
      Term.(
        const run $ socket_arg $ serve_auto_arg $ retries_arg $ retry_backoff_arg
        $ files_pos $ reorder_arg $ jobs_arg $ json_arg $ timings_arg)
  in
  let solve_sub =
    let run socket serve_auto retries backoff path reorder slice trace limits =
      roundtrip socket serve_auto retries backoff Kpt_serve.Protocol.Solve
        {
          Kpt_analysis.Driver.default_options with
          slice;
          trace;
          limits;
          reorder;
        }
        [ path ]
    in
    Cmd.v
      (Cmd.info "solve"
         ~doc:
           "Solve a knowledge-based protocol through the daemon.  With $(b,--trace) \
            the fixpoint events stream back live over the wire.")
      Term.(
        const run $ socket_arg $ serve_auto_arg $ retries_arg $ retry_backoff_arg
        $ file_pos $ reorder_arg $ slice_flag $ trace_arg $ limits_term)
  in
  let slice_sub =
    let run socket serve_auto retries backoff path reorder wrt limits =
      roundtrip socket serve_auto retries backoff Kpt_serve.Protocol.Slice
        {
          Kpt_analysis.Driver.default_options with
          wrt;
          limits;
          reorder;
        }
        [ path ]
    in
    Cmd.v
      (Cmd.info "slice" ~doc:"Cone-of-influence slice through the daemon.")
      Term.(
        const run $ socket_arg $ serve_auto_arg $ retries_arg $ retry_backoff_arg
        $ file_pos $ reorder_arg $ wrt_arg $ limits_term)
  in
  let control cmd =
    fun socket ->
      Kpt_serve.Client.run_cli ~socket:(resolve_socket socket) ~serve_auto:false
        {
          Kpt_serve.Protocol.id = 1;
          cmd;
          files = [];
          opts = Kpt_analysis.Driver.default_options;
        }
  in
  let ping_sub =
    Cmd.v
      (Cmd.info "ping"
         ~doc:
           "Check the daemon is alive and print its counters (requests served, \
            cache entries/hits/misses/evictions, pool size).")
      Term.(const (control Kpt_serve.Protocol.Ping) $ socket_arg)
  in
  let shutdown_sub =
    Cmd.v
      (Cmd.info "shutdown" ~doc:"Ask the daemon to exit cleanly (it removes its socket).")
      Term.(const (control Kpt_serve.Protocol.Shutdown) $ socket_arg)
  in
  Cmd.group
    (Cmd.info "client"
       ~doc:
         "Send a command to a running $(b,kpt serve) daemon over its Unix socket.  \
          Output and exit codes are byte-identical to the direct commands; repeated \
          identical requests are answered from the daemon's result cache.")
    [ check_sub; lint_sub; stats_sub; solve_sub; slice_sub; ping_sub; shutdown_sub ]

(* ---- gen: the seeded corpus generator ------------------------------------- *)

let usage_error fmt = Format.kasprintf (fun m -> Format.eprintf "%s@." m; 2) fmt

(* parse a comma-separated axis with a per-element parser, reporting the
   first offender by name *)
let parse_axis ~what of_string xs =
  List.fold_left
    (fun acc x ->
      match (acc, of_string x) with
      | Error _, _ -> acc
      | Ok _, None -> Error (Printf.sprintf "bad %s %S" what x)
      | Ok ys, Some y -> Ok (ys @ [ y ]))
    (Ok []) xs

let gen_seed_env = "KPT_GEN_SEED"

let gen_flag_summary (c : Kpt_gen.Gen.config) =
  Printf.sprintf "--families %s --sizes %s --faults %s --budgets %s --count %d --seed %s"
    (String.concat "," c.families)
    (String.concat "," (List.map string_of_int c.sizes))
    (String.concat "," (List.map Kpt_gen.Gen.fault_to_string c.faults))
    (String.concat "," (List.map Kpt_gen.Gen.budget_to_string c.budgets))
    c.count
    (Kpt_gen.Rng.seed_to_string c.seed)

let gen_cmd =
  let families_arg =
    Arg.(
      value
      & opt (list string) Kpt_gen.Family.names
      & info [ "families" ] ~docv:"NAME,.."
          ~doc:
            (Printf.sprintf "Protocol families to draw from (default: all of %s)."
               (String.concat ", " Kpt_gen.Family.names)))
  in
  let sizes_arg =
    Arg.(
      value
      & opt (list int) Kpt_gen.Gen.default_config.sizes
      & info [ "sizes" ] ~docv:"N,.."
          ~doc:"Instance sizes (stations, hops, digits …); clamped up to each \
                family's minimum.")
  in
  let faults_arg =
    Arg.(
      value
      & opt (list string) [ "none"; "loss"; "stutter" ]
      & info [ "faults" ] ~docv:"F,.."
          ~doc:
            "Fault models: $(b,none), $(b,loss) (lossy channel; skipped for \
             channel-free families), $(b,stutter) (a no-op self-assignment the \
             hygiene lint flags).")
  in
  let budgets_arg =
    Arg.(
      value
      & opt (list string) [ "none"; "fuel:8" ]
      & info [ "budgets" ] ~docv:"B,.."
          ~doc:
            "Budget classes: $(b,none) (the generous deterministic envelope) or \
             $(b,fuel:N) (tight fuel — expected exhaustion is recorded in the \
             manifest).")
  in
  let count_arg =
    Arg.(value & opt int 1000 & info [ "count" ] ~docv:"N" ~doc:"Number of instances.")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "seed" ] ~docv:"S"
          ~doc:
            (Printf.sprintf
               "Corpus seed (decimal or hex).  Defaults to \\$%s, then 1.  Same \
                flags + same seed = byte-identical corpus."
               gen_seed_env))
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory (created if missing).")
  in
  let run families sizes faults budgets count seed_opt out =
    let seed_str =
      match (seed_opt, Sys.getenv_opt gen_seed_env) with
      | Some s, _ -> s
      | None, Some s -> s
      | None, None -> "1"
    in
    match Kpt_gen.Rng.seed_of_string seed_str with
    | None -> usage_error "kpt gen: bad seed %S (decimal or hex)" seed_str
    | Some seed -> (
        match
          ( parse_axis ~what:"fault" Kpt_gen.Gen.fault_of_string faults,
            parse_axis ~what:"budget" Kpt_gen.Gen.budget_of_string budgets )
        with
        | Error m, _ | _, Error m -> usage_error "kpt gen: %s" m
        | Ok faults, Ok budgets -> (
            let config =
              { Kpt_gen.Gen.families; sizes; faults; budgets; count; seed }
            in
            try
              let instances = Kpt_gen.Gen.write_corpus ~dir:out config in
              let tally key =
                List.length
                  (List.filter
                     (fun i -> i.Kpt_gen.Gen.expected.Kpt_gen.Gen.klass = key)
                     instances)
              in
              Format.printf "wrote %d spec(s) + manifest.json to %s@."
                (List.length instances) out;
              Format.printf "  %s@." (gen_flag_summary config);
              Format.printf
                "  classes: standard %d, kbp_converged %d, kbp_cycle %d, exhausted \
                 %d, error %d@."
                (tally "standard") (tally "kbp_converged") (tally "kbp_cycle")
                (tally "exhausted") (tally "error");
              0
            with
            | Kpt_gen.Gen.Bad_config m -> usage_error "kpt gen: %s" m
            | Sys_error m ->
                Format.eprintf "kpt gen: %s@." m;
                1))
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate a seeded, deterministic corpus of .unity specs over (family × \
          size × fault × budget), with a manifest.json recording each instance's \
          expected envelope (diagnostic codes, outcome class, exit code).  \
          Instance $(i,i) draws only from the position-addressed stream \
          $(i,derive seed i), so the corpus is reproducible at any count on any \
          machine.")
    Term.(
      const run $ families_arg $ sizes_arg $ faults_arg $ budgets_arg $ count_arg
      $ seed_arg $ out_arg)

(* ---- difftest: every pipeline must agree ---------------------------------- *)

let difftest_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR" ~doc:"A corpus directory written by $(b,kpt gen).")
  in
  let limit_arg =
    Arg.(
      value & opt int 0
      & info [ "limit" ] ~docv:"N"
          ~doc:"Only the first N instances (0 = all) — the CI smoke slice.")
  in
  let report_arg =
    Arg.(
      value
      & opt ~vopt:(Some "CORPUS_RESULTS.json") (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Aggregate the run into the analysis document (outcome distributions, \
             pass rate, time-vs-size fits, budget-exhaustion rates) and write it \
             to FILE (default CORPUS_RESULTS.json).")
  in
  let no_serve_arg =
    Arg.(
      value & flag
      & info [ "no-serve" ]
          ~doc:
            "Skip the in-process serve-daemon and result-cache paths (they are \
             byte-compared against the direct path by default).")
  in
  let run dir limit report no_serve =
    match Kpt_gen.Gen.read_manifest dir with
    | exception Kpt_gen.Gen.Bad_manifest m -> usage_error "kpt difftest: %s" m
    | config, instances -> (
        let instances =
          if limit > 0 then List.filteri (fun i _ -> i < limit) instances else instances
        in
        (* the serve path: the same Driver behind the wire codec and the
           daemon's result cache, in-process; and the cache path: a warm
           second request that must be byte-identical *)
        let handler = lazy (Kpt_serve.Handler.create ~cache_size:64) in
        let serve_request ~limits ~file ~source =
          let req =
            {
              Kpt_serve.Protocol.id = 0;
              cmd = Kpt_serve.Protocol.Check;
              files = [ (file, source) ];
              opts =
                {
                  Kpt_analysis.Driver.default_options with
                  jobs = Some 1;
                  limits;
                  reorder = Engine.Reorder_off;
                };
            }
          in
          (* exercise the wire codec too: every request round-trips
             through its JSON encoding before it is handled *)
          match
            Kpt_serve.Protocol.request_of_json
              (Json.of_string (Json.to_string (Kpt_serve.Protocol.request_to_json req)))
          with
          | Ok req -> req
          | Error m -> failwith ("difftest: protocol round-trip failed: " ^ m)
        in
        let extra_paths =
          if no_serve then []
          else
            [
              {
                Kpt_analysis.Difftest.path_name = "serve";
                run =
                  (fun ~limits ~file ~source ->
                    fst
                      (Kpt_serve.Handler.handle (Lazy.force handler)
                         (serve_request ~limits ~file ~source)));
              };
              {
                Kpt_analysis.Difftest.path_name = "serve-cached";
                run =
                  (fun ~limits ~file ~source ->
                    let req = serve_request ~limits ~file ~source in
                    ignore (Kpt_serve.Handler.handle (Lazy.force handler) req);
                    fst (Kpt_serve.Handler.handle (Lazy.force handler) req));
              };
            ]
        in
        let missing = ref [] in
        let rows =
          List.filter_map
            (fun (inst : Kpt_gen.Gen.instance) ->
              let path = Filename.concat dir inst.filename in
              match read_file path with
              | exception Sys_error _ ->
                  missing := inst.filename :: !missing;
                  None
              | source ->
                  let limits = Kpt_gen.Gen.limits_of_budget inst.budget in
                  let t0 = Kpt_obs.now_ns () in
                  let result =
                    Kpt_analysis.Difftest.run_spec ~extra_paths ~expected:inst.expected
                      ~seed:(Int64.add config.seed (Int64.of_int inst.id))
                      ~limits ~file:inst.filename ~source ()
                  in
                  let ns = Int64.sub (Kpt_obs.now_ns ()) t0 in
                  Some
                    {
                      Kpt_analysis.Difftest.o_family = inst.family;
                      o_size = inst.size;
                      o_fault = Kpt_gen.Gen.fault_to_string inst.fault;
                      o_budget = Kpt_gen.Gen.budget_to_string inst.budget;
                      o_ns = ns;
                      o_result = result;
                    })
            instances
        in
        match !missing with
        | f :: _ as fs ->
            usage_error "kpt difftest: %d corpus file(s) missing (e.g. %s) — regenerate \
                         with: kpt gen %s -o %s"
              (List.length fs) f (gen_flag_summary config) dir
        | [] ->
            let results = List.map (fun o -> o.Kpt_analysis.Difftest.o_result) rows in
            let comparisons =
              List.fold_left
                (fun a r -> a + r.Kpt_analysis.Difftest.r_comparisons)
                0 results
            in
            let disagreements =
              List.concat_map (fun r -> r.Kpt_analysis.Difftest.r_disagreements) results
            in
            List.iter
              (fun (d : Kpt_analysis.Difftest.disagreement) ->
                Format.printf "DISAGREEMENT %s: %s@.  %s@." d.d_check d.d_file d.d_detail;
                (match d.d_shrunk with
                | None -> ()
                | Some src -> Format.printf "  shrunk reproducer:@.%s@." src);
                Format.printf "  replay: %s=%s kpt gen %s -o DIR && kpt difftest DIR@."
                  gen_seed_env
                  (Kpt_gen.Rng.seed_to_string config.seed)
                  (gen_flag_summary config))
              disagreements;
            (match report with
            | None -> ()
            | Some file ->
                let doc =
                  Kpt_analysis.Difftest.report_json
                    ~seed:(Kpt_gen.Rng.seed_to_string config.seed)
                    ~paths:(Kpt_analysis.Difftest.path_names ~extra_paths)
                    rows
                in
                let oc = open_out_bin file in
                output_string oc (Json.to_string doc ^ "\n");
                close_out oc;
                Format.printf "wrote %s@." file);
            Format.printf "difftest: %d spec(s), %d comparison(s), %d disagreement(s)@."
              (List.length rows) comparisons (List.length disagreements);
            if disagreements = [] then 0 else 1)
  in
  Cmd.v
    (Cmd.info "difftest"
       ~doc:
         "Run every spec of a generated corpus through pipeline pairs that must \
          agree — $(b,-j1) vs $(b,-j3), $(b,--reorder off) vs $(b,auto), direct vs \
          the in-process serve daemon, cold vs cached — byte-for-byte, plus \
          verdict-preserving transforms (slice, variable renaming, statement \
          permutation) and the manifest's expected envelope.  Disagreements are \
          shrunk by statement removal and reported as replayable KPT_GEN_SEED \
          cases.  Exit 1 on any disagreement.")
    Term.(const run $ dir_arg $ limit_arg $ report_arg $ no_serve_arg)

(* ---- chaos: fault-inject a real daemon process ---------------------------- *)

let chaos_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR" ~doc:"A corpus directory written by $(b,kpt gen).")
  in
  let specs_arg =
    Arg.(
      value & opt int 50
      & info [ "specs" ] ~docv:"N"
          ~doc:"Replay the first N specs (sorted by filename) through each fault.")
  in
  let seed_arg =
    Arg.(
      value & opt string "1"
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Adversary seed (decimal or hex): drives truncation points, garbage \
             shapes and chunk sizes.  Same corpus + same seed = same fault \
             schedule.")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Socket for the spawned daemon (default: a fresh \
             kpt-chaos-$(i,pid).sock under \\$TMPDIR, so sweeps never collide \
             with a real daemon).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 2
      & info [ "serve-jobs" ] ~docv:"N" ~doc:"Worker domains for the spawned daemon.")
  in
  let queue_arg =
    Arg.(
      value & opt int 4
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Daemon queue capacity — kept small so the flood fault overflows it \
             quickly.")
  in
  let request_timeout_arg =
    Arg.(
      value
      & opt pos_float_conv 0.5
      & info [ "request-timeout" ] ~docv:"SEC"
          ~doc:
            "Daemon per-request deadline — kept short so the slow-loris fault \
             resolves quickly.")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "faults" ] ~docv:"F,.."
          ~doc:
            (Printf.sprintf "Fault kinds to inject (default: all of %s)."
               (String.concat ", "
                  (List.map Kpt_serve.Chaos.fault_name Kpt_serve.Chaos.all_faults))))
  in
  let run dir specs seed_str socket jobs queue request_timeout faults =
    match Kpt_gen.Rng.seed_of_string seed_str with
    | None -> usage_error "kpt chaos: bad seed %S (decimal or hex)" seed_str
    | Some seed -> (
        match
          match faults with
          | None -> Ok Kpt_serve.Chaos.all_faults
          | Some names ->
              parse_axis ~what:"fault" Kpt_serve.Chaos.fault_of_name names
        with
        | Error m -> usage_error "kpt chaos: %s" m
        | Ok faults ->
            let socket =
              match socket with
              | Some s -> s
              | None ->
                  Filename.concat
                    (Filename.get_temp_dir_name ())
                    (Printf.sprintf "kpt-chaos-%d.sock" (Unix.getpid ()))
            in
            Kpt_serve.Chaos.run Format.std_formatter
              {
                Kpt_serve.Chaos.exe = Sys.executable_name;
                dir;
                specs;
                seed;
                socket;
                jobs;
                queue;
                request_timeout;
                faults;
              })
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Spawn a $(b,kpt serve) daemon and attack it: replay a generated-corpus \
          slice through injected transport faults — truncated frames, garbage, \
          dribbled writes, mid-request disconnects, slow-loris, queue floods, \
          SIGKILL, SIGTERM drain — asserting the daemon never crashes or wedges, \
          every surviving client gets a byte-identical result or a structured \
          error frame, and the socket is always reclaimed.  Exit 1 on any \
          violation.")
    Term.(
      const run $ dir_arg $ specs_arg $ seed_arg $ socket_arg $ jobs_arg
      $ queue_arg $ request_timeout_arg $ faults_arg)

(* The CLI's robustness boundary.  [catch_break] turns Ctrl-C into
   [Sys.Break], which the pool drains cooperatively and we render as a
   partial-progress summary (exit 130, the conventional SIGINT code).
   Resource crashes the budgets did not preempt — a blown OCaml stack or
   the allocator giving up — are rendered as one diagnostic pointing at
   the budget flags (exit 3), never a raw backtrace.  [~catch:false]
   keeps cmdliner from eating these exceptions first. *)
let () =
  Sys.catch_break true;
  let doc = "knowledge predicate transformers and knowledge-based protocols" in
  let info = Cmd.info "kpt" ~version:"1.0.0" ~doc in
  let resource_diag msg =
    Format.eprintf "%a@." Kpt_analysis.Diagnostic.pp
      (Kpt_analysis.Diagnostic.error ~code:"KPT040"
         ~hint:
           "bound the search: --fuel N caps fixpoint iterations, --max-nodes N caps \
            BDD allocation, --timeout SEC caps wall clock"
         msg)
  in
  let code =
    try
      Cmd.eval' ~catch:false
        (Cmd.group info
           [
             experiments_cmd; solve_cmd; check_cmd; simulate_cmd; proof_cmd; parse_cmd;
             lint_cmd; slice_cmd; solve_file_cmd; verify_cmd; knowledge_cmd; stats_cmd;
             matrix_cmd; serve_cmd; client_cmd; gen_cmd; difftest_cmd; chaos_cmd;
           ])
    with
    | Sys.Break ->
        let completed, total = Kpt_par.progress () in
        if total > 0 then
          Format.eprintf "@.interrupted: %d of %d batch task(s) had completed@."
            completed total
        else Format.eprintf "@.interrupted@.";
        exit_interrupted
    | Stack_overflow ->
        resource_diag
          "the solver overflowed the OCaml stack (fixpoint or BDD recursion too deep \
           for this spec)";
        exit_resource
    | Out_of_memory ->
        resource_diag "the solver exhausted memory (the BDD outgrew this machine)";
        exit_resource
    | Budget.Exhausted reason ->
        (* belt and braces: every budgeted command catches this itself *)
        Format.eprintf "error[KPT041]: resource budget exhausted: %s@."
          (Budget.reason_to_string reason);
        exit_resource
    | e ->
        let bt = Printexc.get_raw_backtrace () in
        Format.eprintf "kpt: internal error, uncaught exception:@.%s@.%s@."
          (Printexc.to_string e)
          (Printexc.raw_backtrace_to_string bt);
        Cmd.Exit.internal_error
  in
  exit code
